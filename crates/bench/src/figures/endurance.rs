//! Endurance / lifetime experiments: how many writes each scheme
//! sustains before the first segment exhausts its (Weibull-drawn)
//! endurance budget. Not a figure from the paper itself, but the
//! direct consequence of its claim: fewer programmed bits per write
//! means proportionally more writes before wear-out.

use crate::systems::{E2System, InPlaceSystem, PlacementSystem, WriteSystem};
use crate::table::{fmt, Table};
use crate::Scale;
use e2nvm_baselines::{Datacon, Dcw, FlipNWrite};
use e2nvm_sim::{DeviceConfig, FaultConfig, NvmDevice, PhysicalSegment, WearTracking};
use e2nvm_workloads::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run one system until its device reports the first worn-out segment
/// (or `cap` writes). Returns (writes to first death, bits programmed,
/// censored?). A baseline's dying write errors — that *is* the death,
/// so errors past the cap check are tolerated here.
fn writes_to_first_death(
    system: &mut dyn WriteSystem,
    values: &[Vec<u8>],
    cap: usize,
) -> (usize, u64, bool) {
    let mut writes = 0usize;
    loop {
        let value = &values[writes % values.len()];
        let _ = system.write(value);
        writes += 1;
        if system.device().worn_out_count() > 0 {
            return (writes, system.stats().bits_programmed, false);
        }
        if writes >= cap {
            return (writes, system.stats().bits_programmed, true);
        }
    }
}

/// Lifetime: writes until the first segment death, per scheme, on one
/// identically seeded fault-injecting device per system. E2-NVM's
/// content-similar placement programs fewer bits per write, which the
/// endurance model converts directly into a longer lifetime.
///
/// Two extra rows run DCW and E2-NVM behind Start-Gap rotation
/// (`+start-gap`): placement decides *logical* targets while the
/// controller rotates the logical→physical remap, so wear spreads
/// across physical slots that placement alone would hammer. The
/// retirement path stays armed throughout — a dying write quarantines
/// the physical slot it actually hit, which is only expressible now
/// that every wear-facing API is keyed on [`PhysicalSegment`].
///
/// The endurance budget is sized so the run spans several full gap
/// rotations (a logical id revisits every physical slot only after
/// ψ·N² writes). Below that horizon start-gap cannot level anything:
/// E2's cluster-concentrated traffic stays pinned to a few physical
/// slots and rotation is pure relocation overhead. Past it, the two
/// mechanisms *compose* — rotation evens the per-slot write rate, so
/// E2's fewer-programmed-bits advantage converts into lifetime at
/// full strength, on top of what it gains alone.
pub fn life01(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(48, 96);
    let psi: u64 = 16;
    let endurance_bits = scale.pick(24_000u64, 60_000);
    let cap = scale.pick(40_000usize, 200_000);
    let mut rng = StdRng::seed_from_u64(0x11FE_0001);
    let resident = DatasetKind::MnistLike.generate_sized(num_segments, segment_bytes, &mut rng);
    let incoming = DatasetKind::MnistLike.generate_sized(1024, segment_bytes, &mut rng);

    // Every system gets its own device with the *same* geometry, seeded
    // content, and fault seed — identical per-segment endurance limits,
    // so lifetime differences are pure placement policy.
    let make_device = || {
        let cfg = DeviceConfig::builder()
            .segment_bytes(segment_bytes)
            .num_segments(num_segments)
            .wear_tracking(WearTracking::None)
            .fault(FaultConfig {
                seed: 0xE2_FA17,
                endurance_bits,
                endurance_shape: 3.0,
                transient_rate: 0.0,
            })
            .build()
            .expect("valid fault device config");
        let mut dev = NvmDevice::new(cfg);
        for (i, data) in resident.iter().enumerate() {
            dev.seed_segment(PhysicalSegment(i), data).expect("seed");
        }
        dev
    };

    let mut table = Table::new(
        "life01",
        "writes to first segment death per scheme (Weibull endurance)",
        &[
            "scheme",
            "writes_to_first_death",
            "bits_programmed",
            "bits_per_write",
            "lifetime_vs_DCW",
            "censored",
        ],
    );

    let mut results: Vec<(String, usize, u64, bool)> = Vec::new();
    {
        let mut sys = InPlaceSystem::new(Box::new(Dcw), make_device());
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((sys.name(), w, bits, censored));
    }
    {
        let mut sys = InPlaceSystem::new(Box::new(FlipNWrite::default()), make_device());
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((sys.name(), w, bits, censored));
    }
    {
        let mut sys = PlacementSystem::new(Box::new(Datacon::new(false)), make_device(), 0.5, 1);
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((sys.name(), w, bits, censored));
    }
    {
        let mut sys = E2System::new(make_device(), E2System::quick_config(segment_bytes, 4), 0.5)
            .expect("e2 system");
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((sys.name(), w, bits, censored));
    }
    // Wear-leveling-on rows: same devices, same endurance draws, but
    // the controller rotates logical→physical under Start-Gap(ψ).
    {
        let mut sys = InPlaceSystem::with_start_gap(Box::new(Dcw), make_device(), psi);
        let name = format!("{}+start-gap", sys.name());
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((name, w, bits, censored));
    }
    {
        let mut sys = E2System::with_start_gap(
            make_device(),
            E2System::quick_config(segment_bytes, 4),
            0.5,
            psi,
        )
        .expect("e2 start-gap system");
        let name = format!("{}+start-gap", sys.name());
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((name, w, bits, censored));
    }

    let dcw_life = results[0].1 as f64;
    for (name, writes, bits, censored) in &results {
        table.row(vec![
            name.clone(),
            writes.to_string(),
            bits.to_string(),
            fmt(*bits as f64 / *writes as f64),
            fmt(*writes as f64 / dcw_life),
            if *censored { "yes".into() } else { "no".into() },
        ]);
    }
    table.note(format!(
        "mean segment endurance {endurance_bits} programmed bits (Weibull k=3, seeded); \
         cap {cap} writes ('censored'=yes means no death before the cap)"
    ));
    table.note(
        "fewer programmed bits per write -> proportionally later first death; \
         placement policy (and, for +start-gap rows, controller rotation) is \
         the only variable across rows",
    );
    table
}

/// Degraded-mode sweep: drive E2-NVM *past* the first death and track
/// how capacity shrinks while serving continues — retired segments vs
/// writes, until the pool is depleted (or the write budget runs out).
///
/// The sweep runs twice over identically seeded devices: once with a
/// pass-through controller (`none`) and once under Start-Gap rotation
/// (`start-gap`). The second run is the full stack the paper's
/// degradation story needs: E2 placement chooses logical targets, the
/// controller rotates the logical→physical remap, and each death
/// retires the logical id from the placement pool *and* quarantines
/// the physical slot the dying write actually hit — all three
/// mechanisms composing over one address-translation layer.
pub fn life02(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(32, 64);
    let psi: u64 = 16;
    let endurance_bits = scale.pick(4_000u64, 10_000);
    let budget = scale.pick(6_000usize, 50_000);
    let mut rng = StdRng::seed_from_u64(0x11FE_0002);
    let resident = DatasetKind::MnistLike.generate_sized(num_segments, segment_bytes, &mut rng);
    let incoming = DatasetKind::MnistLike.generate_sized(1024, segment_bytes, &mut rng);

    let make_device = || {
        let cfg = DeviceConfig::builder()
            .segment_bytes(segment_bytes)
            .num_segments(num_segments)
            .wear_tracking(WearTracking::None)
            .fault(FaultConfig {
                seed: 0xE2_FA17,
                endurance_bits,
                endurance_shape: 3.0,
                transient_rate: 0.0,
            })
            .build()
            .expect("valid fault device config");
        let mut dev = NvmDevice::new(cfg);
        for (i, data) in resident.iter().enumerate() {
            dev.seed_segment(PhysicalSegment(i), data).expect("seed");
        }
        dev
    };

    let mut table = Table::new(
        "life02",
        "E2-NVM graceful degradation: retired segments vs writes served, \
         with and without start-gap wear leveling",
        &[
            "wear_leveling",
            "writes",
            "retired_segments",
            "live_segments",
            "depleted",
        ],
    );
    let checkpoint = budget / 10;
    let quick_cfg = || E2System::quick_config(segment_bytes, 4);
    let systems: Vec<(&str, E2System)> = vec![
        (
            "none",
            E2System::new(make_device(), quick_cfg(), 0.5).expect("e2 system"),
        ),
        (
            "start-gap",
            E2System::with_start_gap(make_device(), quick_cfg(), 0.5, psi)
                .expect("e2 start-gap system"),
        ),
    ];
    for (wl, mut sys) in systems {
        // The logical pool the engine degrades through: one slot
        // smaller than the device under start-gap (the reserved gap).
        let pool = sys.engine_mut().controller().num_segments();
        let mut depleted_at = None;
        for w in 0..budget {
            let value = &incoming[w % incoming.len()];
            if let Err(e) = sys.write(value) {
                // Pool dry: every further placement fails the same way.
                depleted_at = Some((w, e));
                break;
            }
            if (w + 1) % checkpoint == 0 {
                let retired = sys.engine_mut().retired_count();
                table.row(vec![
                    wl.into(),
                    (w + 1).to_string(),
                    retired.to_string(),
                    (pool - retired).to_string(),
                    "no".into(),
                ]);
            }
        }
        if let Some((w, e)) = depleted_at {
            let retired = sys.engine_mut().retired_count();
            table.row(vec![
                wl.into(),
                w.to_string(),
                retired.to_string(),
                (pool - retired).to_string(),
                "yes".into(),
            ]);
            table.note(format!("{wl}: pool depleted after {w} writes: {e}"));
        } else {
            table.note(format!(
                "{wl}: write budget {budget} exhausted before depletion ({} segments retired)",
                sys.engine_mut().retired_count()
            ));
        }
    }
    table.note("capacity shrinks monotonically; every served write stayed verifiable");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale { quick: true }
    }

    #[test]
    fn life01_e2_outlives_dcw() {
        let t = life01(quick());
        assert_eq!(t.rows.len(), 6);
        let life = |row: &[String]| row[1].parse::<usize>().unwrap();
        let dcw = life(&t.rows[0]);
        let e2 = life(&t.rows[3]);
        assert!(e2 > dcw, "E2-NVM must outlive DCW: e2={e2} dcw={dcw}");
        // The DCW baseline must actually die within the cap, or the
        // comparison is vacuous.
        assert_eq!(t.rows[0][5], "no", "DCW run was censored");
        // Wear-leveling-on rows: same ψ, same devices, so the only
        // variable is placement — E2 behind start-gap must sustain at
        // least as many writes as DCW behind start-gap.
        assert!(t.rows[4][0].contains("start-gap"));
        assert!(t.rows[5][0].starts_with("E2-NVM"));
        let dcw_sg = life(&t.rows[4]);
        let e2_sg = life(&t.rows[5]);
        assert!(
            e2_sg >= dcw_sg,
            "E2+start-gap must not die before DCW+start-gap: e2={e2_sg} dcw={dcw_sg}"
        );
    }

    #[test]
    fn life02_degrades_monotonically() {
        let t = life02(quick());
        assert!(!t.rows.is_empty());
        for wl in ["none", "start-gap"] {
            let rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == wl).collect();
            assert!(!rows.is_empty(), "no rows for wear_leveling={wl}");
            let retired: Vec<usize> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
            assert!(
                retired.windows(2).all(|w| w[0] <= w[1]),
                "retired count must be monotone for {wl}: {retired:?}"
            );
            // Live + retired always equals the logical pool size: the
            // full device without wear leveling, one less under
            // start-gap (the controller's reserved gap slot).
            let pool = if wl == "none" { 32 } else { 31 };
            for r in &rows {
                let ret: usize = r[2].parse().unwrap();
                let live: usize = r[3].parse().unwrap();
                assert_eq!(ret + live, pool, "pool size drifted for {wl}");
            }
        }
    }
}
