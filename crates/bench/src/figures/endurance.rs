//! Endurance / lifetime experiments: how many writes each scheme
//! sustains before the first segment exhausts its (Weibull-drawn)
//! endurance budget. Not a figure from the paper itself, but the
//! direct consequence of its claim: fewer programmed bits per write
//! means proportionally more writes before wear-out.

use crate::systems::{E2System, InPlaceSystem, PlacementSystem, WriteSystem};
use crate::table::{fmt, Table};
use crate::Scale;
use e2nvm_baselines::{Datacon, Dcw, FlipNWrite};
use e2nvm_sim::{DeviceConfig, FaultConfig, NvmDevice, SegmentId, WearTracking};
use e2nvm_workloads::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run one system until its device reports the first worn-out segment
/// (or `cap` writes). Returns (writes to first death, bits programmed,
/// censored?). A baseline's dying write errors — that *is* the death,
/// so errors past the cap check are tolerated here.
fn writes_to_first_death(
    system: &mut dyn WriteSystem,
    values: &[Vec<u8>],
    cap: usize,
) -> (usize, u64, bool) {
    let mut writes = 0usize;
    loop {
        let value = &values[writes % values.len()];
        let _ = system.write(value);
        writes += 1;
        if system.device().worn_out_count() > 0 {
            return (writes, system.stats().bits_programmed, false);
        }
        if writes >= cap {
            return (writes, system.stats().bits_programmed, true);
        }
    }
}

/// Lifetime: writes until the first segment death, per scheme, on one
/// identically seeded fault-injecting device per system. E2-NVM's
/// content-similar placement programs fewer bits per write, which the
/// endurance model converts directly into a longer lifetime.
pub fn life01(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(48, 96);
    let endurance_bits = scale.pick(6_000u64, 20_000);
    let cap = scale.pick(8_000usize, 60_000);
    let mut rng = StdRng::seed_from_u64(0x11FE_0001);
    let resident = DatasetKind::MnistLike.generate_sized(num_segments, segment_bytes, &mut rng);
    let incoming = DatasetKind::MnistLike.generate_sized(1024, segment_bytes, &mut rng);

    // Every system gets its own device with the *same* geometry, seeded
    // content, and fault seed — identical per-segment endurance limits,
    // so lifetime differences are pure placement policy.
    let make_device = || {
        let cfg = DeviceConfig::builder()
            .segment_bytes(segment_bytes)
            .num_segments(num_segments)
            .wear_tracking(WearTracking::None)
            .fault(FaultConfig {
                seed: 0xE2_FA17,
                endurance_bits,
                endurance_shape: 3.0,
                transient_rate: 0.0,
            })
            .build()
            .expect("valid fault device config");
        let mut dev = NvmDevice::new(cfg);
        for (i, data) in resident.iter().enumerate() {
            dev.seed_segment(SegmentId(i), data).expect("seed");
        }
        dev
    };

    let mut table = Table::new(
        "life01",
        "writes to first segment death per scheme (Weibull endurance)",
        &[
            "scheme",
            "writes_to_first_death",
            "bits_programmed",
            "bits_per_write",
            "lifetime_vs_DCW",
            "censored",
        ],
    );

    let mut results: Vec<(String, usize, u64, bool)> = Vec::new();
    {
        let mut sys = InPlaceSystem::new(Box::new(Dcw), make_device());
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((sys.name(), w, bits, censored));
    }
    {
        let mut sys = InPlaceSystem::new(Box::new(FlipNWrite::default()), make_device());
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((sys.name(), w, bits, censored));
    }
    {
        let mut sys = PlacementSystem::new(Box::new(Datacon::new(false)), make_device(), 0.5, 1);
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((sys.name(), w, bits, censored));
    }
    {
        let mut sys = E2System::new(make_device(), E2System::quick_config(segment_bytes, 4), 0.5)
            .expect("e2 system");
        let (w, bits, censored) = writes_to_first_death(&mut sys, &incoming, cap);
        results.push((sys.name(), w, bits, censored));
    }

    let dcw_life = results[0].1 as f64;
    for (name, writes, bits, censored) in &results {
        table.row(vec![
            name.clone(),
            writes.to_string(),
            bits.to_string(),
            fmt(*bits as f64 / *writes as f64),
            fmt(*writes as f64 / dcw_life),
            if *censored { "yes".into() } else { "no".into() },
        ]);
    }
    table.note(format!(
        "mean segment endurance {endurance_bits} programmed bits (Weibull k=3, seeded); \
         cap {cap} writes ('censored'=yes means no death before the cap)"
    ));
    table.note(
        "fewer programmed bits per write -> proportionally later first death; \
         placement policy is the only variable across rows",
    );
    table
}

/// Degraded-mode sweep: drive E2-NVM *past* the first death and track
/// how capacity shrinks while serving continues — retired segments vs
/// writes, until the pool is depleted (or the write budget runs out).
pub fn life02(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(32, 64);
    let endurance_bits = scale.pick(4_000u64, 10_000);
    let budget = scale.pick(6_000usize, 50_000);
    let mut rng = StdRng::seed_from_u64(0x11FE_0002);
    let resident = DatasetKind::MnistLike.generate_sized(num_segments, segment_bytes, &mut rng);
    let incoming = DatasetKind::MnistLike.generate_sized(1024, segment_bytes, &mut rng);

    let cfg = DeviceConfig::builder()
        .segment_bytes(segment_bytes)
        .num_segments(num_segments)
        .wear_tracking(WearTracking::None)
        .fault(FaultConfig {
            seed: 0xE2_FA17,
            endurance_bits,
            endurance_shape: 3.0,
            transient_rate: 0.0,
        })
        .build()
        .expect("valid fault device config");
    let mut dev = NvmDevice::new(cfg);
    for (i, data) in resident.iter().enumerate() {
        dev.seed_segment(SegmentId(i), data).expect("seed");
    }
    let mut sys =
        E2System::new(dev, E2System::quick_config(segment_bytes, 4), 0.5).expect("e2 system");

    let mut table = Table::new(
        "life02",
        "E2-NVM graceful degradation: retired segments vs writes served",
        &["writes", "retired_segments", "live_segments", "depleted"],
    );
    let checkpoint = budget / 10;
    let mut depleted_at = None;
    for w in 0..budget {
        let value = &incoming[w % incoming.len()];
        if let Err(e) = sys.write(value) {
            // Pool dry: every further placement fails the same way.
            depleted_at = Some((w, e));
            break;
        }
        if (w + 1) % checkpoint == 0 {
            let retired = sys.engine_mut().retired_count();
            table.row(vec![
                (w + 1).to_string(),
                retired.to_string(),
                (num_segments - retired).to_string(),
                "no".into(),
            ]);
        }
    }
    if let Some((w, e)) = depleted_at {
        let retired = sys.engine_mut().retired_count();
        table.row(vec![
            w.to_string(),
            retired.to_string(),
            (num_segments - retired).to_string(),
            "yes".into(),
        ]);
        table.note(format!("pool depleted after {w} writes: {e}"));
    } else {
        table.note(format!(
            "write budget {budget} exhausted before depletion ({} segments retired)",
            sys.engine_mut().retired_count()
        ));
    }
    table.note("capacity shrinks monotonically; every served write stayed verifiable");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale { quick: true }
    }

    #[test]
    fn life01_e2_outlives_dcw() {
        let t = life01(quick());
        assert_eq!(t.rows.len(), 4);
        let life = |row: &[String]| row[1].parse::<usize>().unwrap();
        let dcw = life(&t.rows[0]);
        let e2 = life(&t.rows[3]);
        assert!(e2 > dcw, "E2-NVM must outlive DCW: e2={e2} dcw={dcw}");
        // The DCW baseline must actually die within the cap, or the
        // comparison is vacuous.
        assert_eq!(t.rows[0][5], "no", "DCW run was censored");
    }

    #[test]
    fn life02_degrades_monotonically() {
        let t = life02(quick());
        assert!(!t.rows.is_empty());
        let retired: Vec<usize> = t
            .rows
            .iter()
            .map(|r| r[1].parse::<usize>().unwrap())
            .collect();
        assert!(
            retired.windows(2).all(|w| w[0] <= w[1]),
            "retired count must be monotone: {retired:?}"
        );
        // Live + retired always equals the pool size.
        for r in &t.rows {
            let ret: usize = r[1].parse().unwrap();
            let live: usize = r[2].parse().unwrap();
            assert_eq!(ret + live, 32);
        }
    }
}
