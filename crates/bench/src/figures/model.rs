//! Figures 4, 8, 9 and 18: model-level behaviour (clustering
//! scalability, K selection, learning curves, training cost).

use crate::table::{fmt, Table};
use crate::Scale;
use e2nvm_core::{kselect, E2Config, PaddingLocation, PaddingType};
use e2nvm_ml::data::segments_to_matrix;
use e2nvm_ml::rng::seeded;
use e2nvm_ml::{ClusterModel, DecConfig, KMeans, Pca, VaeConfig};
use e2nvm_sim::bitops::hamming;
use e2nvm_sim::EnergyParams;
use e2nvm_workloads::DatasetKind;
use std::time::Instant;

/// Expected flips when an incoming item overwrites a same-cluster
/// resident: the mean hamming distance between each test item and a
/// rotating member of its predicted cluster.
fn expected_flips(
    items: &[Vec<u8>],
    assignments: &[usize],
    test: &[Vec<u8>],
    predict: impl Fn(&[u8]) -> usize,
) -> f64 {
    let k = assignments.iter().copied().max().unwrap_or(0) + 1;
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assignments.iter().enumerate() {
        groups[c].push(i);
    }
    let mut total = 0.0;
    let mut count = 0u64;
    for (t_idx, item) in test.iter().enumerate() {
        let c = predict(item);
        let group = &groups[c.min(k - 1)];
        if group.is_empty() {
            continue;
        }
        // "We just take the first available address in the cluster":
        // rotate through the group to model FIFO pops.
        let target = group[t_idx % group.len()];
        total += hamming(item, &items[target]) as f64;
        count += 1;
    }
    if count == 0 {
        f64::NAN
    } else {
        total / count as f64
    }
}

/// Figure 4: preprocessing/training latency and achieved bit flips vs
/// feature count, for K-means alone, PCA+K-means (the two PNW modes),
/// and the VAE-based model (E2-NVM), on MNIST-like data.
pub fn fig04(scale: Scale) -> Table {
    let k = 10;
    let n_train = scale.pick(192, 512);
    let n_test = scale.pick(64, 128);
    let feature_counts: Vec<usize> = scale.pick(
        vec![32, 128, 512, 2048],
        vec![32, 128, 512, 2048, 8192, 16384],
    );
    let mut table = Table::new(
        "fig04",
        "clustering latency + bit flips vs feature count (MNIST-like, k=10)",
        &[
            "features",
            "kmeans_ms",
            "kmeans_flips",
            "pca_kmeans_ms",
            "pca_kmeans_flips",
            "vae_ms",
            "vae_flips",
        ],
    );
    for &m in &feature_counts {
        let bytes = m / 8;
        let mut rng = seeded(0x000F_1604 ^ m as u64);
        let items = DatasetKind::MnistLike.generate_sized(n_train, bytes, &mut rng);
        let test = DatasetKind::MnistLike.generate_sized(n_test, bytes, &mut rng);
        let features = segments_to_matrix(&items);

        // --- K-means on raw bits (PNW mode 1) ---
        let t0 = Instant::now();
        let raw_fit = KMeans::fit(&features, k, 25, &mut rng);
        let kmeans_ms = t0.elapsed().as_secs_f64() * 1e3;
        let kmeans_flips = expected_flips(&items, &raw_fit.assignments, &test, |item| {
            raw_fit
                .model
                .predict(&e2nvm_ml::data::bytes_to_features(item))
        });

        // --- PCA + K-means (PNW mode 2) ---
        let t0 = Instant::now();
        let pca = Pca::fit(&features, 16, 8, &mut rng);
        let reduced = pca.transform(&features);
        let pca_fit = KMeans::fit(&reduced, k, 25, &mut rng);
        let pca_ms = t0.elapsed().as_secs_f64() * 1e3;
        let pca_flips = expected_flips(&items, &pca_fit.assignments, &test, |item| {
            pca_fit
                .model
                .predict(&pca.transform_one(&e2nvm_ml::data::bytes_to_features(item)))
        });

        // --- VAE + K-means (E2-NVM) ---
        let dec_cfg = DecConfig {
            vae: VaeConfig {
                input_dim: m,
                hidden: vec![64.min(m).max(16)],
                latent_dim: 10,
                lr: 3e-3,
                beta: 0.1,
            },
            k,
            pretrain_epochs: scale.pick(10, 20),
            joint_epochs: 3,
            gamma: 0.2,
            batch: 64,
            kmeans_iters: 25,
            soft_assignment: false,
        };
        let t0 = Instant::now();
        let (model, _) = ClusterModel::train(&dec_cfg, &features, None, &mut rng);
        let vae_ms = t0.elapsed().as_secs_f64() * 1e3;
        let assignments = model.predict_batch(&features);
        let vae_flips = expected_flips(&items, &assignments, &test, |item| {
            model.predict(&e2nvm_ml::data::bytes_to_features(item))
        });

        table.row(vec![
            m.to_string(),
            fmt(kmeans_ms),
            fmt(kmeans_flips),
            fmt(pca_ms),
            fmt(pca_flips),
            fmt(vae_ms),
            fmt(vae_flips),
        ]);
    }
    table.note("paper Fig 4: raw K-means latency explodes with features; PCA+K-means trades flips for speed; VAE keeps both low");
    table
}

/// Figure 8: SSE elbow and the energy valley vs K (CIFAR-like data).
pub fn fig08(scale: Scale) -> Table {
    let segment_bytes = 64;
    let n = scale.pick(192, 512);
    let mut rng = seeded(0x000F_1608);
    let contents = DatasetKind::CifarLike.generate_sized(n, segment_bytes, &mut rng);
    let ks: Vec<usize> = scale.pick(
        vec![1, 2, 4, 6, 10, 16],
        vec![1, 2, 4, 6, 8, 12, 16, 24, 30],
    );
    let base = E2Config::builder()
        .fast(segment_bytes, 1)
        .pretrain_epochs(scale.pick(8, 15))
        .joint_epochs(2)
        .latent_dim(8)
        .hidden(vec![48])
        .padding_type(PaddingType::Zero)
        .padding_location(PaddingLocation::End)
        .build()
        .unwrap();
    // Assume a write volume that makes both energy terms visible.
    let est_writes = scale.pick(20_000u64, 200_000);
    let sel = kselect::sweep_k(
        &base,
        &contents,
        &ks,
        &EnergyParams::default(),
        est_writes,
        &mut rng,
    );
    let mut table = Table::new(
        "fig08",
        "SSE elbow + energy valley vs K (CIFAR-like)",
        &[
            "k",
            "sse",
            "expected_flips",
            "train_energy_uj",
            "write_energy_uj",
            "total_uj",
        ],
    );
    for p in &sel.points {
        table.row(vec![
            p.k.to_string(),
            fmt(p.sse as f64),
            fmt(p.expected_flips),
            fmt(p.train_energy_pj / 1e6),
            fmt(p.write_energy_pj / 1e6),
            fmt(p.total_energy_pj() / 1e6),
        ]);
    }
    table.note(format!(
        "elbow K = {}, energy-valley K = {} (paper Fig 8: elbow at K=6 on CIFAR-10)",
        sel.elbow_k, sel.energy_k
    ));
    table
}

/// Figure 9: VAE training and validation loss curves per dataset.
pub fn fig09(scale: Scale) -> Table {
    let segment_bytes = 64;
    let n = scale.pick(256, 640);
    let epochs = scale.pick(12, 25);
    let kinds = [
        DatasetKind::MnistLike,
        DatasetKind::CifarLike,
        DatasetKind::AmazonAccess,
        DatasetKind::PubMed,
    ];
    let mut curves: Vec<(String, Vec<f32>, Vec<f32>)> = Vec::new();
    for kind in kinds {
        let mut rng = seeded(0x000F_1609 ^ kind.item_bytes() as u64);
        let items = kind.generate_sized(n, segment_bytes, &mut rng);
        let cfg = E2Config::builder()
            .fast(segment_bytes, 4)
            .pretrain_epochs(epochs)
            .joint_epochs(0)
            .latent_dim(8)
            .hidden(vec![64])
            .padding_type(PaddingType::Zero)
            .build()
            .unwrap();
        let model = e2nvm_core::E2Model::train(&cfg, &items, &mut rng);
        let h = model.history();
        curves.push((
            kind.name().to_string(),
            h.train.iter().map(|l| l.total()).collect(),
            h.validation.iter().map(|l| l.total()).collect(),
        ));
    }
    let mut headers: Vec<String> = vec!["epoch".into()];
    for (name, _, _) in &curves {
        headers.push(format!("{name}_train"));
        headers.push(format!("{name}_val"));
    }
    let mut table = Table::new(
        "fig09",
        "VAE training/validation loss per epoch per dataset",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for e in 0..epochs {
        let mut row = vec![e.to_string()];
        for (_, train, val) in &curves {
            row.push(fmt(train.get(e).copied().unwrap_or(f32::NAN) as f64));
            row.push(fmt(val.get(e).copied().unwrap_or(f32::NAN) as f64));
        }
        table.row(row);
    }
    table.note("paper Fig 9: losses converge within a few epochs on every dataset");
    table
}

/// Figure 18: training latency and energy per epoch vs the number of
/// indexed memory segments (ImageNet-like).
pub fn fig18(scale: Scale) -> Table {
    let segment_bytes = 64;
    let counts: Vec<usize> = scale.pick(vec![256, 1024, 4096], vec![512, 2048, 8192, 32768]);
    let energy = EnergyParams::default();
    let mut table = Table::new(
        "fig18",
        "training latency + energy per epoch vs #segments (ImageNet-like)",
        &["segments", "epoch_ms", "epoch_energy_uj"],
    );
    for &n in &counts {
        let mut rng = seeded(0x000F_1618 ^ n as u64);
        let items = DatasetKind::ImagenetLike.generate_sized(n, segment_bytes, &mut rng);
        let features = segments_to_matrix(&items);
        let mut vae = e2nvm_ml::Vae::new(
            VaeConfig {
                input_dim: segment_bytes * 8,
                hidden: vec![64],
                latent_dim: 8,
                lr: 3e-3,
                beta: 0.1,
            },
            &mut rng,
        );
        // Warm one epoch (allocator effects), then time one epoch.
        vae.train_epoch(&features, 64, &mut rng);
        let t0 = Instant::now();
        vae.train_epoch(&features, 64, &mut rng);
        let epoch_ms = t0.elapsed().as_secs_f64() * 1e3;
        let epoch_energy = energy.cpu_energy_pj(vae.train_macs_per_epoch(n)) / 1e6;
        table.row(vec![n.to_string(), fmt(epoch_ms), fmt(epoch_energy)]);
    }
    table.note("paper Fig 18: both latency and energy per epoch grow with segment count");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale { quick: true }
    }

    #[test]
    fn fig04_kmeans_latency_grows_and_vae_flips_low() {
        let t = fig04(quick());
        let first = &t.rows[0];
        let last = t.rows.last().unwrap();
        let kmeans_first: f64 = first[1].parse().unwrap();
        let kmeans_last: f64 = last[1].parse().unwrap();
        assert!(
            kmeans_last > kmeans_first * 4.0,
            "raw kmeans latency should blow up: {kmeans_first} -> {kmeans_last}"
        );
        // At the largest size, VAE flips should not be worse than
        // PCA+K-means by much (paper: VAE strictly better).
        let pca_flips: f64 = last[4].parse().unwrap();
        let vae_flips: f64 = last[6].parse().unwrap();
        assert!(
            vae_flips < pca_flips * 1.3,
            "vae={vae_flips} pca={pca_flips}"
        );
    }

    #[test]
    fn fig08_valley_exists() {
        let t = fig08(quick());
        // SSE decreases with K.
        let sses: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(sses.first().unwrap() > sses.last().unwrap());
        // Training energy increases with K.
        let te: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(te.first().unwrap() < te.last().unwrap());
    }

    #[test]
    fn fig09_losses_decrease() {
        let t = fig09(quick());
        for col in 1..t.headers.len() {
            let first: f64 = t.rows[0][col].parse().unwrap();
            let last: f64 = t.rows.last().unwrap()[col].parse().unwrap();
            assert!(
                last < first,
                "{}: loss did not decrease ({first} -> {last})",
                t.headers[col]
            );
        }
    }

    #[test]
    fn fig18_cost_grows_with_segments() {
        let t = fig18(quick());
        let ms: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let uj: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(ms.last().unwrap() > ms.first().unwrap());
        assert!(uj.windows(2).all(|w| w[0] < w[1]), "{uj:?}");
    }
}
