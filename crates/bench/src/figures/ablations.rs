//! Ablations beyond the paper's figures, probing design choices
//! DESIGN.md calls out: the joint VAE+K-means loss, the device's media
//! DCW, and the DAP's take-the-first policy.

use crate::systems::seeded_device;
use crate::table::{fmt, Table};
use crate::Scale;
use e2nvm_core::{E2Config, E2Model, Padder, PaddingLocation, PaddingType};
use e2nvm_sim::bitops::hamming;
use e2nvm_sim::{DeviceConfig, NvmDevice, PhysicalSegment, WearTracking};
use e2nvm_workloads::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

fn quick_cfg(scale: Scale, segment_bytes: usize, k: usize, gamma: f32) -> E2Config {
    E2Config::builder()
        .fast(segment_bytes, k)
        .latent_dim(8)
        .hidden(vec![64])
        .pretrain_epochs(scale.pick(15, 25))
        .joint_epochs(scale.pick(5, 8))
        .gamma(gamma)
        .lr(3e-3)
        .beta(0.1)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap()
}

/// Mean flips when each test item overwrites the rotating first member
/// of its predicted cluster.
fn placement_flips(model: &E2Model, pool: &[Vec<u8>], test: &[Vec<u8>]) -> f64 {
    let assignments = model.classify_segments(pool);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); model.k()];
    for (i, &c) in assignments.iter().enumerate() {
        groups[c].push(i);
    }
    let padder = Padder::new(PaddingLocation::End, PaddingType::Zero);
    let mut rng = StdRng::seed_from_u64(1);
    let mut total = 0.0;
    let mut count = 0u64;
    for (t, item) in test.iter().enumerate() {
        let c = model.predict_value(item, &padder, &mut rng);
        let group = &groups[c];
        if group.is_empty() {
            continue;
        }
        let target = group[t % group.len()];
        total += hamming(item, &pool[target]) as f64;
        count += 1;
    }
    total / count.max(1) as f64
}

/// abl01 — γ ablation: does the joint cluster loss (DEC-style
/// fine-tuning, §3.2) buy anything over plain VAE-then-K-means?
pub fn abl01(scale: Scale) -> Table {
    let segment_bytes = 64;
    let n = scale.pick(256, 512);
    let mut table = Table::new(
        "abl01",
        "joint-training ablation: gamma = 0 (VAE then K-means) vs gamma > 0",
        &["gamma", "latent_sse", "expected_flips"],
    );
    for &gamma in &[0.0f32, 0.1, 0.3, 1.0] {
        let mut rng = StdRng::seed_from_u64(0xAB01);
        let pool = DatasetKind::MnistLike.generate_sized(n, segment_bytes, &mut rng);
        let test = DatasetKind::MnistLike.generate_sized(n / 4, segment_bytes, &mut rng);
        let cfg = quick_cfg(scale, segment_bytes, 10, gamma);
        let model = E2Model::train(&cfg, &pool, &mut rng);
        let sse = model.history().sse.last().copied().unwrap_or(f32::NAN);
        table.row(vec![
            format!("{gamma}"),
            fmt(sse as f64),
            fmt(placement_flips(&model, &pool, &test)),
        ]);
    }
    table.note(
        "joint epochs compact the latent clusters (SSE drops with gamma); flips should not regress",
    );
    table
}

/// abl02 — media DCW ablation: how much of the energy win belongs to
/// the device's differential write vs the placement?
pub fn abl02(scale: Scale) -> Table {
    let segment_bytes = 64;
    let n_writes = scale.pick(256, 1024);
    let mut rng = StdRng::seed_from_u64(0xAB02);
    let old = DatasetKind::MnistLike.generate_sized(128, segment_bytes, &mut rng);
    let incoming = DatasetKind::MnistLike.generate_sized(n_writes, segment_bytes, &mut rng);
    let mut table = Table::new(
        "abl02",
        "media DCW ablation: bits programmed per write, DCW on vs off",
        &[
            "media_dcw",
            "bits_programmed_per_write",
            "bits_flipped_per_write",
            "energy_per_write_pj",
        ],
    );
    for dcw in [true, false] {
        let cfg = DeviceConfig::builder()
            .segment_bytes(segment_bytes)
            .num_segments(128)
            .media_dcw(dcw)
            .build()
            .expect("config");
        let mut dev = NvmDevice::new(cfg);
        for (i, c) in old.iter().enumerate() {
            dev.seed_segment(PhysicalSegment(i), c).expect("seed");
        }
        for (i, v) in incoming.iter().enumerate() {
            dev.write(PhysicalSegment(i % 128), v).expect("write");
        }
        let s = dev.stats();
        table.row(vec![
            dcw.to_string(),
            fmt(s.bits_programmed as f64 / s.writes as f64),
            fmt(s.bits_flipped as f64 / s.writes as f64),
            fmt(s.energy_per_write_pj()),
        ]);
    }
    table.note("without DCW every bit of every written line costs a pulse; flips (endurance) are identical");
    table
}

/// abl03 — the paper's §3.3.1 design decision: take the *first* free
/// address of the predicted cluster vs searching the whole cluster for
/// the best match (and, as an upper bound, searching the whole pool).
pub fn abl03(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(128, 256);
    let n_writes = scale.pick(192, 512);
    let mut rng = StdRng::seed_from_u64(0xAB03);
    let old = DatasetKind::MnistLike.generate_sized(num_segments, segment_bytes, &mut rng);
    let incoming = DatasetKind::MnistLike.generate_sized(n_writes, segment_bytes, &mut rng);

    // Train one model on the pool.
    let cfg = quick_cfg(scale, segment_bytes, 10, 0.2);
    let model = E2Model::train(&cfg, &old, &mut rng);

    #[derive(Clone, Copy, PartialEq)]
    enum Policy {
        FifoHead,
        BestInCluster,
        BestInPool,
    }

    let run = |policy: Policy| -> (f64, f64) {
        let mut dev = seeded_device(segment_bytes, num_segments, WearTracking::None, &old);
        // cluster -> free segment queue.
        let assignments = model.classify_segments(&old);
        let mut pools: Vec<VecDeque<PhysicalSegment>> = vec![VecDeque::new(); model.k()];
        for (i, &c) in assignments.iter().enumerate() {
            pools[c].push_back(PhysicalSegment(i));
        }
        let padder = Padder::new(PaddingLocation::End, PaddingType::Zero);
        let mut prng = StdRng::seed_from_u64(7);
        let mut occupied: VecDeque<PhysicalSegment> = VecDeque::new();
        let mut search_evals = 0u64;
        for item in &incoming {
            if occupied.len() >= num_segments / 2 {
                let seg = occupied.pop_front().expect("nonempty");
                let content = dev.peek(seg).to_vec();
                let c = model.predict_value(&content, &padder, &mut prng);
                pools[c].push_back(seg);
            }
            let c = model.predict_value(item, &padder, &mut prng);
            // Candidate clusters nearest-first.
            let order: Vec<usize> = if pools[c].is_empty() {
                (0..model.k()).filter(|&x| !pools[x].is_empty()).collect()
            } else {
                vec![c]
            };
            let cluster = *order.first().expect("some cluster nonempty");
            let seg = match policy {
                Policy::FifoHead => pools[cluster].pop_front().expect("nonempty"),
                Policy::BestInCluster => {
                    let (idx, _) = pools[cluster]
                        .iter()
                        .enumerate()
                        .map(|(i, &s)| {
                            search_evals += 1;
                            (i, hamming(dev.peek(s), item))
                        })
                        .min_by_key(|&(_, d)| d)
                        .expect("nonempty");
                    pools[cluster].remove(idx).expect("valid index")
                }
                Policy::BestInPool => {
                    let (ci, idx, _) = pools
                        .iter()
                        .enumerate()
                        .flat_map(|(ci, q)| q.iter().enumerate().map(move |(i, &s)| (ci, i, s)))
                        .map(|(ci, i, s)| {
                            search_evals += 1;
                            (ci, i, hamming(dev.peek(s), item))
                        })
                        .min_by_key(|&(_, _, d)| d)
                        .expect("pool nonempty");
                    pools[ci].remove(idx).expect("valid index")
                }
            };
            dev.write_at(seg, 0, item).expect("write");
            occupied.push_back(seg);
        }
        (
            dev.stats().flips_per_write(),
            search_evals as f64 / incoming.len() as f64,
        )
    };

    let mut table = Table::new(
        "abl03",
        "DAP policy ablation: first-of-cluster vs best-of-cluster vs best-of-pool",
        &["policy", "flips_per_write", "hamming_evals_per_write"],
    );
    for (name, policy) in [
        ("fifo_head (paper)", Policy::FifoHead),
        ("best_in_cluster", Policy::BestInCluster),
        ("best_in_pool", Policy::BestInPool),
    ] {
        let (flips, evals) = run(policy);
        table.row(vec![name.to_string(), fmt(flips), fmt(evals)]);
    }
    table.note("the paper's claim: taking the first address already captures most of the benefit — the search upside must be small relative to its per-write cost");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale { quick: true }
    }

    #[test]
    fn abl01_gamma_compacts_latent() {
        let t = abl01(quick());
        let sse: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // gamma = 1.0 must compact the latent space vs gamma = 0.
        assert!(
            *sse.last().unwrap() < *sse.first().unwrap(),
            "joint loss did not compact: {sse:?}"
        );
        // Flips must not blow up from the extra loss term.
        let flips: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(
            *flips.last().unwrap() < flips.first().unwrap() * 1.25,
            "flips regressed: {flips:?}"
        );
    }

    #[test]
    fn abl02_dcw_cuts_programming_not_flips() {
        let t = abl02(quick());
        let on = &t.rows[0];
        let off = &t.rows[1];
        let prog_on: f64 = on[1].parse().unwrap();
        let prog_off: f64 = off[1].parse().unwrap();
        assert!(prog_on * 2.0 < prog_off, "dcw on={prog_on} off={prog_off}");
        // Endurance-relevant flips identical.
        assert_eq!(on[2], off[2]);
        let e_on: f64 = on[3].parse().unwrap();
        let e_off: f64 = off[3].parse().unwrap();
        assert!(e_on < e_off);
    }

    #[test]
    fn abl03_fifo_captures_most_of_the_benefit() {
        let t = abl03(quick());
        let get = |row: usize, col: usize| -> f64 { t.rows[row][col].parse().unwrap() };
        let fifo = get(0, 1);
        let best_cluster = get(1, 1);
        let best_pool = get(2, 1);
        // Searching can only help.
        assert!(best_pool <= best_cluster * 1.01);
        assert!(best_cluster <= fifo * 1.01);
        // The paper's design decision: the FIFO head is within ~2x of
        // the exhaustive upper bound while doing zero hamming scans.
        assert!(
            fifo <= best_pool * 2.5,
            "fifo {fifo} too far from upper bound {best_pool}"
        );
        assert_eq!(get(0, 2), 0.0, "fifo must not scan");
        assert!(get(2, 2) > get(1, 2), "pool search must scan more");
    }
}
