//! One submodule per paper figure group; every function returns a
//! [`crate::Table`] that the `experiments` binary prints and saves.

pub mod ablations;
pub mod device;
pub mod endurance;
pub mod engine;
pub mod model;
pub mod padding;
pub mod structures;
