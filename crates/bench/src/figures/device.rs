//! Figures 1 and 2: raw device behaviour.

use crate::systems::{seeded_device, stream, E2System, InPlaceSystem};
use crate::table::{fmt, Table};
use crate::Scale;
use e2nvm_baselines::{Captopril, Dcw, FlipNWrite, MinShift};
use e2nvm_sim::{DeviceConfig, NvmDevice, PhysicalSegment, WearTracking};
use e2nvm_workloads::DatasetKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Figure 1: latency and energy per round when overwriting 256 B blocks
/// with content that is x% different (hamming) from what is stored.
/// The paper measures ≈56 % energy saving at 0 % difference on real
/// Optane; the simulator's energy model is calibrated to that shape.
pub fn fig01(scale: Scale) -> Table {
    let n_blocks = scale.pick(256, 2048);
    let mut rng = StdRng::seed_from_u64(0x000F_1601);
    let mut table = Table::new(
        "fig01",
        "latency + energy vs content difference (256B blocks)",
        &[
            "diff_pct",
            "avg_latency_ns",
            "avg_energy_pj",
            "energy_saving_pct",
            "latency_saving_pct",
        ],
    );
    // System-level energy/latency calibration (PMDK transaction costs
    // included) — see EnergyParams::system_level().
    let cfg = DeviceConfig::builder()
        .segment_bytes(256)
        .num_segments(n_blocks)
        .energy(e2nvm_sim::EnergyParams::system_level())
        .latency(e2nvm_sim::LatencyParams::system_level())
        .build()
        .expect("valid config");
    let mut base_energy = None;
    let mut base_latency = None;
    let mut rows = Vec::new();
    for diff_pct in (0..=100).step_by(10) {
        let mut dev = NvmDevice::new(cfg.clone());
        // Round setup: random old data in every block.
        let old: Vec<Vec<u8>> = (0..n_blocks)
            .map(|_| (0..256).map(|_| rng.gen()).collect())
            .collect();
        for (i, data) in old.iter().enumerate() {
            dev.seed_segment(PhysicalSegment(i), data).expect("seed");
        }
        // Overwrite with x%-different content: flip exactly x% of bits,
        // uniformly chosen.
        for (i, data) in old.iter().enumerate() {
            let mut new = data.clone();
            let flips = 256 * 8 * diff_pct / 100;
            // Choose distinct bit positions via partial shuffle.
            let mut positions: Vec<usize> = (0..256 * 8).collect();
            for f in 0..flips {
                let j = rng.gen_range(f..positions.len());
                positions.swap(f, j);
                let bit = positions[f];
                new[bit / 8] ^= 1 << (7 - bit % 8);
            }
            dev.write(PhysicalSegment(i), &new).expect("write");
        }
        let stats = dev.stats();
        let avg_energy = stats.energy_pj / n_blocks as f64;
        let avg_latency = stats.latency_ns / n_blocks as f64;
        if diff_pct == 100 {
            base_energy = Some(avg_energy);
            base_latency = Some(avg_latency);
        }
        rows.push((diff_pct, avg_latency, avg_energy));
    }
    let base_e = base_energy.expect("100% row exists");
    let base_l = base_latency.expect("100% row exists");
    let mut max_saving: f64 = 0.0;
    for (diff_pct, lat, en) in rows {
        let e_saving = (1.0 - en / base_e) * 100.0;
        let l_saving = (1.0 - lat / base_l) * 100.0;
        max_saving = max_saving.max(e_saving);
        table.row(vec![
            diff_pct.to_string(),
            fmt(lat),
            fmt(en),
            fmt(e_saving),
            fmt(l_saving),
        ]);
    }
    table.note(format!(
        "max energy saving {}% (paper: up to 56% on real Optane)",
        fmt(max_saving)
    ));
    table
}

/// Figure 2: average bit updates per write vs the wear-leveling swap
/// period ψ, for E2-NVM and the RBW baselines, on Amazon-Access-shaped
/// records. At ψ = 1 the controller swap defeats placement; at normal
/// ψ (tens of writes) E2-NVM's advantage appears.
#[allow(clippy::box_default)] // Box::default() cannot infer Box<dyn Trait>
pub fn fig02(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(96, 256);
    let n_writes = scale.pick(256, 1024);
    let mut rng = StdRng::seed_from_u64(0x000F_1602);
    let old = DatasetKind::AmazonAccess.generate_sized(num_segments, segment_bytes, &mut rng);
    let incoming = DatasetKind::AmazonAccess.generate_sized(n_writes, segment_bytes, &mut rng);

    let psis: Vec<u64> = scale.pick(vec![1, 5, 20, 50], vec![1, 2, 5, 10, 20, 50]);
    let mut table = Table::new(
        "fig02",
        "avg bit updates per write vs wear-leveling period psi (Amazon Access)",
        &["psi", "DCW", "FNW", "MinShift", "Captopril", "E2-NVM"],
    );
    for &psi in &psis {
        let proto = seeded_device(segment_bytes, num_segments, WearTracking::None, &old);
        let run_inplace = |scheme: Box<dyn e2nvm_baselines::InPlaceScheme>| -> f64 {
            let mut sys = InPlaceSystem::with_wear_leveling(scheme, proto.clone(), psi);
            let stats = stream(&mut sys, &incoming, 16).expect("stream");
            stats.flips_per_write()
        };
        let dcw = run_inplace(Box::new(Dcw));
        let fnw = run_inplace(Box::new(FlipNWrite::default()));
        let ms = run_inplace(Box::new(MinShift::default()));
        let cap = run_inplace(Box::new(Captopril::default()));
        let e2 = {
            let mut sys = E2System::with_wear_leveling(
                proto.clone(),
                E2System::quick_config(segment_bytes, 6),
                0.5,
                psi,
            )
            .expect("e2 system");
            let stats = stream(&mut sys, &incoming, 16).expect("stream");
            stats.flips_per_write()
        };
        table.row(vec![
            psi.to_string(),
            fmt(dcw),
            fmt(fnw),
            fmt(ms),
            fmt(cap),
            fmt(e2),
        ]);
    }
    table.note(
        "paper Fig 2: at psi=1 swaps defeat placement; E2-NVM wins at normal psi (10s of writes)",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale { quick: true }
    }

    #[test]
    fn fig01_shape() {
        let t = fig01(quick());
        assert_eq!(t.rows.len(), 11);
        // Energy strictly increases with difference.
        let energies: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[2].parse::<f64>().unwrap())
            .collect();
        assert!(energies.windows(2).all(|w| w[0] <= w[1]), "{energies:?}");
        // Headline saving at 0% difference is large (paper: 56%).
        let saving0: f64 = t.rows[0][3].parse().unwrap();
        assert!(
            (45.0..65.0).contains(&saving0),
            "saving at 0% should be near the paper's 56%: {saving0}"
        );
        // Latency also improves, moderately.
        let lat_saving0: f64 = t.rows[0][4].parse().unwrap();
        assert!(lat_saving0 > 20.0, "latency saving {lat_saving0}");
    }

    #[test]
    fn fig02_e2_wins_at_large_psi_not_psi1() {
        let t = fig02(quick());
        let first = &t.rows[0]; // psi = 1
        let last = t.rows.last().unwrap(); // psi = 50
        let dcw_last: f64 = last[1].parse().unwrap();
        let e2_last: f64 = last[5].parse().unwrap();
        assert!(
            e2_last < dcw_last,
            "E2 should win at large psi: e2={e2_last} dcw={dcw_last}"
        );
        // At psi = 1 the advantage shrinks (ratio closer to 1 than at 50).
        let dcw_1: f64 = first[1].parse().unwrap();
        let e2_1: f64 = first[5].parse().unwrap();
        let ratio_1 = e2_1 / dcw_1;
        let ratio_50 = e2_last / dcw_last;
        assert!(
            ratio_1 > ratio_50,
            "advantage should grow with psi: r1={ratio_1} r50={ratio_50}"
        );
    }
}
