//! Figures 12 and 16: index structures plugged into E2-NVM, and the
//! energy time series across training/writing/retraining phases.

use crate::systems::seeded_device;
use crate::table::{fmt, Table};
use crate::Scale;
use e2nvm_core::E2Engine;
use e2nvm_kvstore::{
    BPlusTree, DirectNodeStore, E2NodeStore, FpTree, NodeStore, NoveLsm, NvmKvStore, PathHashing,
    WiscKey,
};
use e2nvm_sim::{EnergyCategory, EnergyMeter, MemoryController, WearTracking};
use e2nvm_workloads::{DatasetKind, Zipfian};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn direct_store(dev: e2nvm_sim::NvmDevice) -> DirectNodeStore {
    DirectNodeStore::new(MemoryController::without_wear_leveling(dev))
}

fn e2_store(dev: e2nvm_sim::NvmDevice, k: usize) -> E2NodeStore {
    let seg = dev.config().segment_bytes;
    let mut engine = E2Engine::new(
        MemoryController::without_wear_leveling(dev),
        crate::systems::E2System::quick_config(seg, k),
    )
    .expect("engine");
    engine.train().expect("train");
    E2NodeStore::new(engine)
}

/// Drive one KV structure with an insert/delete **churn** workload of
/// clusterable values (a rolling key window, scrambled key order) plus
/// zipfian updates; return flips per written data bit measured over the
/// second half (after a maintenance pass — the paper retrains lazily in
/// the background).
///
/// Churn is what separates the structures: random-position inserts make
/// the sorted B+-tree leaf shift its tail, while slot/append structures
/// write a single cell or record.
fn run_structure(store: &mut dyn NvmKvStore, keys: u64, ops: usize, value_len: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(0x000F_1612);
    let zipf = Zipfian::new(keys as usize);
    let values = DatasetKind::MnistLike.generate_sized(64, value_len, &mut rng);
    let scrambled = e2nvm_workloads::scramble;
    // Logical bits written per put: key + value (the paper's "1 data
    // bit" denominator — device traffic like full-leaf rewrites is the
    // *numerator*'s business).
    let logical_bits_per_put = ((8 + value_len) * 8) as u64;
    // Load a rolling window of keys. Fixed-capacity structures (path
    // hashing) may refuse some keys when a hash path fills; skip them —
    // later deletes of never-inserted keys are harmless no-ops.
    let (mut lo, mut hi) = (0u64, keys);
    for key in lo..hi {
        let v = &values[(key as usize) % values.len()];
        let _ = store.put(scrambled(key) >> 8, v);
    }
    let mut logical_bits = 0u64;
    let mut churn =
        |store: &mut dyn NvmKvStore, ops: usize, rng: &mut StdRng, logical_bits: &mut u64| {
            for i in 0..ops {
                match rng.gen_range(0..10) {
                    // 40% insert a new key (random position in key space).
                    // Structures with fixed capacity (path hashing) may
                    // refuse when a path fills; skip those inserts.
                    0..=3 => {
                        let v = &values[(hi as usize) % values.len()];
                        if store.put(scrambled(hi) >> 8, v).is_ok() {
                            *logical_bits += logical_bits_per_put;
                            hi += 1;
                        }
                    }
                    // 30% delete the oldest live key.
                    4..=6 if hi - lo > keys / 2 => {
                        let _ = store.delete(scrambled(lo) >> 8);
                        lo += 1;
                    }
                    // 30% update a random live key.
                    _ => {
                        let span = (hi - lo).max(1);
                        let key = lo + (zipf.sample(rng) as u64) % span;
                        let v = &values[(i + key as usize) % values.len()];
                        if store.put(scrambled(key) >> 8, v).is_ok() {
                            *logical_bits += logical_bits_per_put;
                        }
                    }
                }
            }
        };
    // Warm half: fills the free pool with recycled node images.
    churn(store, ops / 2, &mut rng, &mut logical_bits);
    // Lazy retraining (no-op for the direct store).
    store.maintenance();
    store.reset_stats();
    logical_bits = 0;
    // Measured half.
    churn(store, ops - ops / 2, &mut rng, &mut logical_bits);
    store.stats().bits_flipped as f64 / logical_bits.max(1) as f64
}

/// Figure 12: bit updates per written data bit for each NVM structure,
/// bare (direct placement) vs plugged into E2-NVM (content-aware
/// copy-on-write placement of node images).
pub fn fig12(scale: Scale) -> Table {
    // Values sized close to the segment, matching the paper's system
    // model where a memory segment holds one data item — so every
    // structural write is a whole-segment placement decision.
    let segment_bytes = 128;
    let num_segments = scale.pick(256, 512);
    let keys = scale.pick(48u64, 96);
    let ops = scale.pick(512, 1280);
    let value_len = 40;
    let k = 8;
    let mut rng = StdRng::seed_from_u64(0x000F_1612 ^ 7);
    // Seed the device with value-like content so the placement model has
    // realistic residents (stands in for a previously used pool).
    let old = DatasetKind::MnistLike.generate_sized(num_segments, segment_bytes, &mut rng);

    let mut table = Table::new(
        "fig12",
        "bit updates per written data bit: bare vs plugged into E2-NVM",
        &["structure", "direct", "e2_plugged", "improvement_pct"],
    );

    type Maker = Box<dyn Fn(Box<dyn NodeStore>) -> Box<dyn NvmKvStore>>;
    let makers: Vec<(&str, Maker)> = vec![
        (
            "B+-Tree",
            Box::new(|s: Box<dyn NodeStore>| Box::new(BPlusTree::new(s)) as Box<dyn NvmKvStore>),
        ),
        (
            "WiscKey",
            Box::new(|s: Box<dyn NodeStore>| Box::new(WiscKey::new(s)) as Box<dyn NvmKvStore>),
        ),
        (
            "Path Hashing",
            Box::new(move |s: Box<dyn NodeStore>| {
                Box::new(PathHashing::new(s, 128, 3, value_len).expect("path hashing"))
                    as Box<dyn NvmKvStore>
            }),
        ),
        (
            "FP-Tree",
            Box::new(move |s: Box<dyn NodeStore>| {
                Box::new(FpTree::new(s, value_len)) as Box<dyn NvmKvStore>
            }),
        ),
        (
            "NoveLSM",
            Box::new(|s: Box<dyn NodeStore>| Box::new(NoveLsm::new(s, 4)) as Box<dyn NvmKvStore>),
        ),
    ];

    for (name, make) in makers {
        let dev = seeded_device(segment_bytes, num_segments, WearTracking::None, &old);
        let mut direct = make(Box::new(direct_store(dev.clone())));
        let direct_ratio = run_structure(direct.as_mut(), keys, ops, value_len);
        let mut plugged = make(Box::new(e2_store(dev, k)));
        let e2_ratio = run_structure(plugged.as_mut(), keys, ops, value_len);
        let improvement = (1.0 - e2_ratio / direct_ratio) * 100.0;
        table.row(vec![
            name.to_string(),
            fmt(direct_ratio),
            fmt(e2_ratio),
            fmt(improvement),
        ]);
    }
    table.note("paper Fig 12: bare B+-Tree is worst (sorted-leaf shifting); plugging into E2-NVM improves every structure (up to 91%)");
    table
}

/// Figure 16: cumulative package energy over time for E2-NVM going
/// through train → write ×5 → retrain → write ×4 phases, vs a
/// wear-leveling-only baseline on the same stream (ImageNet-like).
pub fn fig16(scale: Scale) -> Table {
    let segment_bytes = 128;
    let num_segments = scale.pick(128, 256);
    let rounds_before = 5usize;
    let rounds_after = 4usize;
    let writes_per_round = num_segments / 2;
    let mut rng = StdRng::seed_from_u64(0x000F_1616);
    let old = DatasetKind::ImagenetLike.generate_sized(num_segments, segment_bytes, &mut rng);
    let stream_items = DatasetKind::ImagenetLike.generate_sized(
        (rounds_before + rounds_after) * writes_per_round,
        segment_bytes,
        &mut rng,
    );

    // --- E2-NVM system with an energy meter ---
    let dev = seeded_device(segment_bytes, num_segments, WearTracking::None, &old);
    let mut e2 = crate::systems::E2System::new(
        dev.clone(),
        crate::systems::E2System::quick_config(segment_bytes, 8),
        0.5,
    )
    .expect("e2 system");
    let mut meter = EnergyMeter::new();
    let energy_params = dev.config().energy.clone();
    // Phase 1: initial training (CPU energy + wall time as sim time).
    use crate::systems::WriteSystem;
    let train_time = e2.train_time();
    let train_macs = {
        let engine = e2.engine_mut();
        let model = engine.model().expect("trained");
        let epochs = (engine.config().pretrain_epochs + engine.config().joint_epochs) as u64;
        model.train_macs_per_epoch(num_segments.min(engine.config().train_sample_cap)) * epochs
    };
    meter.record(
        EnergyCategory::CpuTrain,
        energy_params.cpu_energy_pj(train_macs),
        train_time.as_nanos() as f64,
    );

    // --- Wear-leveling-only baseline (DCW behind random swap) ---
    let mut wl =
        crate::systems::InPlaceSystem::with_wear_leveling(Box::new(e2nvm_baselines::Dcw), dev, 20);
    let mut wl_meter = EnergyMeter::new();

    let mut table = Table::new(
        "fig16",
        "cumulative energy over phases: E2-NVM (train/write/retrain) vs wear-leveling only",
        &["phase", "e2_t_ms", "e2_cum_uj", "wl_t_ms", "wl_cum_uj"],
    );
    let mut stream_pos = 0usize;
    let write_round = |label: &str,
                       e2: &mut crate::systems::E2System,
                       wl: &mut crate::systems::InPlaceSystem,
                       meter: &mut EnergyMeter,
                       wl_meter: &mut EnergyMeter,
                       table: &mut Table,
                       stream_pos: &mut usize| {
        use crate::systems::WriteSystem;
        let slice = &stream_items[*stream_pos..*stream_pos + writes_per_round];
        *stream_pos += writes_per_round;
        let (e_before, l_before) = (e2.stats().energy_pj, e2.stats().latency_ns);
        for v in slice {
            e2.write(v).expect("e2 write");
        }
        meter.record(
            EnergyCategory::NvmWrite,
            e2.stats().energy_pj - e_before,
            e2.stats().latency_ns - l_before,
        );
        let s = meter.sample();
        let (we_before, wl_before) = (wl.stats().energy_pj, wl.stats().latency_ns);
        for v in slice {
            wl.write(v).expect("wl write");
        }
        wl_meter.record(
            EnergyCategory::NvmWrite,
            wl.stats().energy_pj - we_before,
            wl.stats().latency_ns - wl_before,
        );
        let ws = wl_meter.sample();
        table.row(vec![
            label.to_string(),
            fmt(s.t_ns / 1e6),
            fmt(s.cumulative_pj / 1e6),
            fmt(ws.t_ns / 1e6),
            fmt(ws.cumulative_pj / 1e6),
        ]);
    };

    {
        let s = meter.sample();
        let ws = wl_meter.sample();
        table.row(vec![
            "1:train".into(),
            fmt(s.t_ns / 1e6),
            fmt(s.cumulative_pj / 1e6),
            fmt(ws.t_ns / 1e6),
            fmt(ws.cumulative_pj / 1e6),
        ]);
    }
    for round in 0..rounds_before {
        write_round(
            &format!("2:write{}", round + 1),
            &mut e2,
            &mut wl,
            &mut meter,
            &mut wl_meter,
            &mut table,
            &mut stream_pos,
        );
    }
    // Phase 3: retraining.
    {
        let t0 = std::time::Instant::now();
        e2.engine_mut().train().expect("retrain");
        meter.record(
            EnergyCategory::CpuTrain,
            energy_params.cpu_energy_pj(train_macs),
            t0.elapsed().as_nanos() as f64,
        );
        let s = meter.sample();
        let ws = wl_meter.sample();
        table.row(vec![
            "3:retrain".into(),
            fmt(s.t_ns / 1e6),
            fmt(s.cumulative_pj / 1e6),
            fmt(ws.t_ns / 1e6),
            fmt(ws.cumulative_pj / 1e6),
        ]);
    }
    for round in 0..rounds_after {
        write_round(
            &format!("4:write{}", round + 1),
            &mut e2,
            &mut wl,
            &mut meter,
            &mut wl_meter,
            &mut table,
            &mut stream_pos,
        );
    }
    table.note(format!(
        "E2 total {} uJ (incl. training) vs wear-leveling {} uJ — steady-state write energy is lower for E2, amortizing the training spikes",
        fmt(meter.total_pj() / 1e6),
        fmt(wl_meter.total_pj() / 1e6)
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale { quick: true }
    }

    #[test]
    fn fig12_e2_helps_where_it_can_and_never_hurts() {
        let t = fig12(quick());
        assert_eq!(t.rows.len(), 5);
        let get = |name: &str, col: usize| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("row {name}"))[col]
                .parse()
                .unwrap()
        };
        // Plugging never hurts beyond noise (the integration keeps the
        // in-place write when relocation would not pay).
        for row in &t.rows {
            let improvement: f64 = row[3].parse().unwrap();
            assert!(
                improvement > -3.0,
                "{}: E2 plugging regressed by {improvement}%",
                row[0]
            );
        }
        // The structures that rewrite whole node images benefit most.
        assert!(get("B+-Tree", 3) > 5.0, "B+-Tree: {}", get("B+-Tree", 3));
        assert!(get("FP-Tree", 3) > 5.0, "FP-Tree: {}", get("FP-Tree", 3));
        // Among the bare structures the in-place single-cell hash is the
        // cheapest and the compaction-amplified LSM the most expensive —
        // write amplification shows up as flips.
        assert!(get("Path Hashing", 1) < get("NoveLSM", 1));
    }

    #[test]
    fn fig16_training_spike_then_cheaper_writes() {
        let t = fig16(quick());
        // First row is the training phase: E2 has energy, WL has none.
        let e2_train: f64 = t.rows[0][2].parse().unwrap();
        let wl_train: f64 = t.rows[0][4].parse().unwrap();
        assert!(e2_train > 0.0);
        assert_eq!(wl_train, 0.0);
        // Per-round write energy: E2's increment is smaller than WL's in
        // the later rounds.
        let parse = |r: usize, c: usize| -> f64 { t.rows[r][c].parse().unwrap() };
        let last = t.rows.len() - 1;
        let e2_delta = parse(last, 2) - parse(last - 1, 2);
        let wl_delta = parse(last, 4) - parse(last - 1, 4);
        assert!(
            e2_delta < wl_delta,
            "steady-state: e2 {e2_delta} vs wl {wl_delta}"
        );
    }
}
