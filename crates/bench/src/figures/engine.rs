//! Figures 7, 10, 11, 13, 17, 19: the E2-NVM engine under workloads.

use crate::systems::{
    seeded_device, stream, E2System, InPlaceSystem, PlacementSystem, WriteSystem,
};
use crate::table::{fmt, Table};
use crate::Scale;
use e2nvm_baselines::{Captopril, Dcw, FlipNWrite, InPlaceScheme, MinShift, Pnw, PnwMode};
use e2nvm_sim::WearTracking;
use e2nvm_workloads::{DatasetKind, Operation, Ycsb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Figure 7: DAP memory footprint and write energy vs the number of
/// indexed segments (PubMed-like data). More indexed segments cost DRAM
/// but give the placement model more choices, cutting NVM energy.
pub fn fig07(scale: Scale) -> Table {
    let segment_bytes = 64;
    let counts: Vec<usize> = scale.pick(
        vec![128, 512, 2048, 8192],
        vec![256, 1024, 8192, 65536, 262144],
    );
    let n_writes = scale.pick(384, 1024);
    let mut table = Table::new(
        "fig07",
        "DAP memory + write energy vs #indexed segments (PubMed-like)",
        &[
            "segments",
            "dap_kib",
            "energy_per_write_pj",
            "flips_per_write",
        ],
    );
    // One shared item universe so rows differ only in pool size.
    let mut shared_rng = StdRng::seed_from_u64(0x000F_1607);
    let universe = DatasetKind::PubMed.generate_sized(
        counts.iter().copied().max().unwrap_or(0).min(4096),
        segment_bytes,
        &mut shared_rng,
    );
    let incoming_shared =
        DatasetKind::PubMed.generate_sized(n_writes, segment_bytes, &mut shared_rng);
    for &n in &counts {
        let old: Vec<Vec<u8>> = universe
            .iter()
            .cycle()
            .take(n.min(universe.len()))
            .cloned()
            .collect();
        let incoming = incoming_shared.clone();
        let dev = seeded_device(segment_bytes, n, WearTracking::None, &old);
        // Absolute occupancy (128 live segments regardless of pool
        // size): the experiment isolates the effect of *choice count*,
        // not of recycling dynamics.
        let occupancy = (128.0 / n as f64).min(0.5);
        let mut sys = E2System::new(dev, E2System::quick_config(segment_bytes, 8), occupancy)
            .expect("e2 system");
        let stats = stream(&mut sys, &incoming, 32).expect("stream");
        let dap_kib = sys.engine_mut().dap_memory_bytes() as f64 / 1024.0;
        table.row(vec![
            n.to_string(),
            fmt(dap_kib),
            fmt(stats.energy_per_write_pj()),
            fmt(stats.flips_per_write()),
        ]);
    }
    table.note("paper Fig 7: 100K-1M segments is the sweet spot — MBs of DRAM, no further energy gain beyond");
    table
}

/// Figure 10: bits updated per PMem (cache line) access vs k for the
/// RBW baselines, PNW, and E2-NVM across datasets, plus the prediction
/// latency of the two ML methods.
#[allow(clippy::box_default)] // Box::default() cannot infer Box<dyn Trait>
pub fn fig10(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(128, 256);
    let n_writes = scale.pick(256, 768);
    let ks: Vec<usize> = scale.pick(vec![1, 10, 30], vec![1, 5, 10, 20, 30]);
    let kinds = [
        DatasetKind::AmazonAccess,
        DatasetKind::RoadNetwork,
        DatasetKind::MnistLike,
        DatasetKind::CifarLike,
    ];
    let mut table = Table::new(
        "fig10",
        "bits updated per cache-line access vs k, per dataset",
        &[
            "dataset",
            "k",
            "DCW",
            "MinShift",
            "FNW",
            "Captopril",
            "PNW",
            "E2-NVM",
            "pnw_pred_us",
            "e2_pred_us",
        ],
    );
    for kind in kinds {
        let mut rng = StdRng::seed_from_u64(0x000F_1610 ^ kind.item_bytes() as u64);
        let old = kind.generate_sized(num_segments, segment_bytes, &mut rng);
        let incoming = kind.generate_sized(n_writes, segment_bytes, &mut rng);
        let proto = seeded_device(segment_bytes, num_segments, WearTracking::None, &old);

        let run_inplace = |scheme: Box<dyn InPlaceScheme>| -> f64 {
            let mut sys = InPlaceSystem::new(scheme, proto.clone());
            stream(&mut sys, &incoming, 32)
                .expect("stream")
                .flips_per_line_access()
        };
        let dcw = run_inplace(Box::new(Dcw));
        let ms = run_inplace(Box::new(MinShift::default()));
        let fnw = run_inplace(Box::new(FlipNWrite::default()));
        let cap = run_inplace(Box::new(Captopril::default()));

        for &k in &ks {
            let (pnw_flips, pnw_us) = {
                let mut sys = PlacementSystem::new(
                    Box::new(Pnw::new(k, PnwMode::PcaKMeans { components: 12 })),
                    proto.clone(),
                    0.5,
                    7,
                );
                let s = stream(&mut sys, &incoming, 32).expect("stream");
                (s.flips_per_line_access(), sys.mean_predict_ns() / 1e3)
            };
            let (e2_flips, e2_us) = {
                let mut sys =
                    E2System::new(proto.clone(), E2System::quick_config(segment_bytes, k), 0.5)
                        .expect("e2 system");
                let s = stream(&mut sys, &incoming, 32).expect("stream");
                (s.flips_per_line_access(), sys.mean_predict_ns() / 1e3)
            };
            table.row(vec![
                kind.name().to_string(),
                k.to_string(),
                fmt(dcw),
                fmt(ms),
                fmt(fnw),
                fmt(cap),
                fmt(pnw_flips),
                fmt(e2_flips),
                fmt(pnw_us),
                fmt(e2_us),
            ]);
        }
    }
    table.note("paper Fig 10: at k=1 E2/PNW/DCW coincide; E2-NVM improves with k (up to 3.2x over PNW, 4.23x over RBW); E2 prediction is slower than PNW (two-stage)");
    table
}

/// Values for the YCSB figure: class-structured (clusterable) content
/// derived from the key, with per-version perturbation — stands in for
/// the structured 10 GB dataset the paper loads.
struct ClassValues {
    templates: Vec<Vec<u8>>,
}

impl ClassValues {
    fn new(value_len: usize, classes: usize, rng: &mut StdRng) -> Self {
        let templates = (0..classes)
            .map(|_| (0..value_len).map(|_| rng.gen()).collect())
            .collect();
        Self { templates }
    }

    fn value(&self, key: u64, version: u32) -> Vec<u8> {
        let t = &self.templates[(key as usize) % self.templates.len()];
        let mut state = key ^ u64::from(version).wrapping_mul(0x9E37_79B9);
        t.iter()
            .map(|&b| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // ~6% of bytes perturbed per version.
                if (state >> 33) % 16 == 0 {
                    b ^ ((state >> 40) as u8)
                } else {
                    b
                }
            })
            .collect()
    }
}

/// Figure 11: average energy per cache-line access vs segment size and
/// k, under the YCSB core workloads.
pub fn fig11(scale: Scale) -> Table {
    let pool_bytes = scale.pick(32 << 10, 128 << 10);
    let seg_sizes: Vec<usize> = scale.pick(vec![64, 256], vec![64, 256, 1024]);
    let ks: Vec<usize> = scale.pick(vec![4, 16], vec![4, 8, 16, 32]);
    let ops_per_workload = scale.pick(300, 1500);
    let mut table = Table::new(
        "fig11",
        "energy per cache-line access vs segment size and k (YCSB A-F)",
        &[
            "workload",
            "segment_bytes",
            "k",
            "energy_per_line_pj",
            "flips_per_line",
        ],
    );
    for &seg in &seg_sizes {
        let num_segments = pool_bytes / seg;
        for &k in &ks {
            let mut rng = StdRng::seed_from_u64(0x000F_1611 ^ (seg * k) as u64);
            let values = ClassValues::new(seg, 10, &mut rng);
            let records = (num_segments / 2) as u64;
            let workloads = Ycsb::all(records, seg, 0x000F_1611);
            for mut w in workloads {
                // Fresh engine per workload: seed pool with the loaded
                // records' content pattern.
                let old: Vec<Vec<u8>> = (0..num_segments)
                    .map(|i| values.value(i as u64, 0))
                    .collect();
                let dev = seeded_device(seg, num_segments, WearTracking::None, &old);
                let mut sys =
                    E2System::new(dev, E2System::quick_config(seg, k), 0.45).expect("e2 system");
                // Load phase via placement stream (keys are implicit).
                let engine = sys.engine_mut();
                for key in 0..records {
                    engine.put(key, &values.value(key, 0)).expect("load put");
                }
                engine.reset_device_stats();
                // Run phase.
                let mut version = 1u32;
                for op in w.take_ops(ops_per_workload) {
                    match op {
                        Operation::Read(kk) => {
                            let _ = engine.get(kk % records);
                        }
                        Operation::Update(kk, _) | Operation::ReadModifyWrite(kk, _) => {
                            version += 1;
                            let kk = kk % records;
                            if engine.put(kk, &values.value(kk, version)).is_err() {
                                break;
                            }
                        }
                        Operation::Insert(kk, _) => {
                            version += 1;
                            // Bounded key space: an insert may replace.
                            if engine
                                .put(kk % (records * 2), &values.value(kk, version))
                                .is_err()
                            {
                                break;
                            }
                        }
                        Operation::Scan(kk, len) => {
                            let lo = kk % records;
                            let _ = engine.scan(lo..lo.saturating_add(len as u64));
                        }
                    }
                }
                let stats = engine.device_stats();
                let lines = stats.lines_written + stats.lines_skipped;
                // Workload C is read-only: the per-write-line metric is
                // undefined there.
                let (energy_cell, flips_cell) = if lines == 0 {
                    ("-".to_string(), "-".to_string())
                } else {
                    (
                        fmt(stats.energy_pj / lines as f64),
                        fmt(stats.bits_flipped as f64 / lines as f64),
                    )
                };
                table.row(vec![
                    w.name().to_string(),
                    seg.to_string(),
                    k.to_string(),
                    energy_cell,
                    flips_cell,
                ]);
            }
        }
    }
    table.note("paper Fig 11: smaller segments and more clusters both reduce energy per access");
    table
}

/// Figure 13: updated-bit ratio and total energy across the segment ×
/// pool size grid, on a mixture of all real-like workloads.
pub fn fig13(scale: Scale) -> Table {
    let seg_sizes: Vec<usize> = scale.pick(vec![64, 256], vec![64, 128, 256, 512]);
    let pool_sizes: Vec<usize> = scale.pick(
        vec![16 << 10, 64 << 10],
        vec![32 << 10, 128 << 10, 512 << 10],
    );
    let n_writes = scale.pick(384, 1024);
    let mut table = Table::new(
        "fig13",
        "updated-bit ratio + energy vs segment and pool size (mixed workloads)",
        &[
            "segment_bytes",
            "pool_kib",
            "segments",
            "flip_ratio",
            "energy_per_write_pj",
        ],
    );
    for &pool in &pool_sizes {
        for &seg in &seg_sizes {
            let num_segments = pool / seg;
            let mut rng = StdRng::seed_from_u64(0x000F_1613 ^ (pool + seg) as u64);
            // Mixture of every dataset family, sized to the segment —
            // old pool contents and the incoming stream are separate
            // draws (writing back the identical items would make
            // placement trivially perfect).
            let mut old = Vec::new();
            let mut mixed = Vec::new();
            for kind in DatasetKind::ALL {
                old.extend(kind.generate_sized((num_segments / 6).max(4), seg, &mut rng));
                mixed.extend(kind.generate_sized(n_writes / 6, seg, &mut rng));
            }
            let dev = seeded_device(seg, num_segments, WearTracking::None, &old);
            let mut sys =
                E2System::new(dev, E2System::quick_config(seg, 8), 0.5).expect("e2 system");
            let stats = stream(&mut sys, &mixed, 32).expect("stream");
            table.row(vec![
                seg.to_string(),
                (pool >> 10).to_string(),
                num_segments.to_string(),
                fmt(stats.flips_per_data_bit()),
                fmt(stats.energy_per_write_pj()),
            ]);
        }
    }
    table.note("paper Fig 13: smaller segment-to-pool ratio -> more choices -> fewer flips and less energy");
    table
}

/// Figure 17: bit updates over time through the five dynamic scenarios
/// (MNIST stream over random content, retrain, Fashion mixture, CIFAR,
/// retrain on CIFAR).
pub fn fig17(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(128, 256);
    let per_phase = scale.pick(256, 512);
    let chunk = per_phase / 8;
    let mut rng = StdRng::seed_from_u64(0x000F_1617);

    // Random initial content (scenario 1 seeds the zone with "completely
    // random content").
    let random: Vec<Vec<u8>> = (0..num_segments)
        .map(|_| (0..segment_bytes).map(|_| rng.gen()).collect())
        .collect();
    let dev = seeded_device(segment_bytes, num_segments, WearTracking::None, &random);
    let mut sys =
        E2System::new(dev, E2System::quick_config(segment_bytes, 6), 0.5).expect("e2 system");

    let mnist = DatasetKind::MnistLike.generate_sized(per_phase * 2, segment_bytes, &mut rng);
    let fashion = DatasetKind::FashionLike.generate_sized(per_phase, segment_bytes, &mut rng);
    let cifar = DatasetKind::CifarLike.generate_sized(per_phase * 2, segment_bytes, &mut rng);

    let mut table = Table::new(
        "fig17",
        "bit updates per write over time, five scenarios",
        &["phase", "chunk", "avg_flips_per_write"],
    );
    let run_phase =
        |label: &str, values: &[Vec<u8>], sys: &mut E2System, table: &mut Table| -> (f64, f64) {
            let mut chunk_means = Vec::new();
            for (ci, group) in values.chunks(chunk).enumerate() {
                sys.reset_stats();
                for v in group {
                    sys.write(v).expect("write");
                }
                let s = sys.stats();
                let mean = s.flips_per_write();
                chunk_means.push(mean);
                table.row(vec![label.to_string(), ci.to_string(), fmt(mean)]);
            }
            let half = chunk_means.len() / 2;
            let first: f64 = chunk_means[..half].iter().sum::<f64>() / half.max(1) as f64;
            let second: f64 =
                chunk_means[half..].iter().sum::<f64>() / (chunk_means.len() - half).max(1) as f64;
            (first, second)
        };

    // Scenario 1: MNIST over random content (model trained on random).
    let (p1_first, p1_second) =
        run_phase("I:mnist/random", &mnist[..per_phase], &mut sys, &mut table);
    // Scenario 2: retrain on current content, more MNIST.
    sys.engine_mut().train().expect("retrain");
    let (_, p2_second) = run_phase(
        "II:mnist/retrained",
        &mnist[per_phase..],
        &mut sys,
        &mut table,
    );
    // Scenario 3: 1:2 Fashion:MNIST mixture.
    let mix: Vec<Vec<u8>> = fashion
        .iter()
        .zip(mnist.iter().cycle())
        .flat_map(|(f, m)| [f.clone(), m.clone(), m.clone()])
        .take(per_phase)
        .collect();
    let (p3_first, _) = run_phase("III:fashion+mnist", &mix, &mut sys, &mut table);
    // Scenario 4: CIFAR, unseen by the model.
    let (p4_first, _) = run_phase(
        "IV:cifar/stale-model",
        &cifar[..per_phase],
        &mut sys,
        &mut table,
    );
    // Scenario 5: retrain on current (CIFAR-ish) content, more CIFAR.
    sys.engine_mut().train().expect("retrain");
    let (_, p5_second) = run_phase(
        "V:cifar/retrained",
        &cifar[per_phase..],
        &mut sys,
        &mut table,
    );

    table.note(format!(
        "phase means: I {}->{} (fluctuation narrows), II {}, III jumps to {}, IV {}, V settles to {}",
        fmt(p1_first),
        fmt(p1_second),
        fmt(p2_second),
        fmt(p3_first),
        fmt(p4_first),
        fmt(p5_second)
    ));
    table
}

/// Figure 19: wear-leveling CDFs — maximum writes per address and flips
/// per bit after streaming a MNIST+Fashion mixture with k=30.
pub fn fig19(scale: Scale) -> Table {
    let segment_bytes = 64;
    let num_segments = scale.pick(128, 256);
    let warm = scale.pick(128, 280);
    let n_writes = scale.pick(512, 1120);
    let k = scale.pick(10, 30);
    let mut rng = StdRng::seed_from_u64(0x000F_1619);
    let mut items = DatasetKind::MnistLike.generate_sized(warm + n_writes, segment_bytes, &mut rng);
    let fashion = DatasetKind::FashionLike.generate_sized(warm + n_writes, segment_bytes, &mut rng);
    for (i, f) in fashion.into_iter().enumerate() {
        if i % 2 == 0 && i < items.len() {
            items[i] = f;
        }
    }
    let old = &items[..warm.min(items.len())];
    let dev = seeded_device(segment_bytes, num_segments, WearTracking::PerBit, old);
    let mut sys =
        E2System::new(dev, E2System::quick_config(segment_bytes, k), 0.5).expect("e2 system");
    stream(&mut sys, &items, 0).expect("stream");

    let wear = sys.device().wear();
    let addr_cdf = wear.segment_write_cdf();
    let bit_cdf = wear.bit_flip_cdf();
    let mut table = Table::new(
        "fig19",
        "wear CDFs: P(addr written <= x), P(bit flipped <= x)",
        &["x", "p_addr_writes_le_x", "p_bit_flips_le_x"],
    );
    let max_x = addr_cdf
        .last()
        .map(|v| v.0)
        .unwrap_or(0)
        .max(bit_cdf.last().map(|v| v.0).unwrap_or(0));
    let lookup = |cdf: &[(u32, f64)], x: u32| -> f64 {
        cdf.iter()
            .rev()
            .find(|&&(v, _)| v <= x)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    };
    for x in 0..=max_x.min(40) {
        table.row(vec![
            x.to_string(),
            fmt(lookup(&addr_cdf, x)),
            fmt(lookup(&bit_cdf, x)),
        ]);
    }
    table.note("paper Fig 19: P(addr<=10)~81%, P(bit<=5)~85%, P(bit<=7)~98% — writes and flips spread across the zone");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale { quick: true }
    }

    #[test]
    fn fig07_memory_grows_energy_shrinks() {
        let t = fig07(quick());
        let mem: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            mem.windows(2).all(|w| w[0] < w[1]),
            "DAP memory not growing: {mem:?}"
        );
        // Flips saturate with pool size: the DAP takes the FIFO head
        // of a cluster rather than searching, so the benefit of extra
        // segments levels off (the paper's "no significant improvements
        // beyond 1M segments").
        let flips: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(
            *flips.last().unwrap() <= flips.first().unwrap() * 1.15,
            "flips should saturate, not grow: {flips:?}"
        );
    }

    #[test]
    fn fig10_orderings() {
        let t = fig10(quick());
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let k: usize = row[1].parse().unwrap();
            let dcw: f64 = row[2].parse().unwrap();
            let e2: f64 = row[7].parse().unwrap();
            if k >= 10 && (row[0] == "MNIST" || row[0] == "CIFAR-10") {
                assert!(
                    e2 < dcw,
                    "E2 at k={k} should beat DCW on {}: e2={e2} dcw={dcw}",
                    row[0]
                );
            }
            // E2 prediction latency exceeds PNW's (two predictions).
            let pnw_us: f64 = row[8].parse().unwrap();
            let e2_us: f64 = row[9].parse().unwrap();
            assert!(e2_us > pnw_us * 0.5, "e2 pred {e2_us}us vs pnw {pnw_us}us");
        }
    }

    #[test]
    fn fig11_larger_k_cuts_write_energy() {
        let t = fig11(quick());
        // Compare per-workload energy at k=4 vs k=16 for the same
        // segment size, write-bearing workloads only.
        let mut by_key: std::collections::HashMap<(String, String), Vec<(usize, f64)>> =
            Default::default();
        for row in &t.rows {
            if row[3] == "-" || row[4] == "-" {
                continue; // read-only workload C
            }
            by_key
                .entry((row[0].clone(), row[1].clone()))
                .or_default()
                .push((row[2].parse().unwrap(), row[4].parse().unwrap()));
        }
        let mut improved = 0;
        let mut total = 0;
        for ((w, seg), mut rows) in by_key {
            rows.sort_by_key(|r| r.0);
            let small_k = rows.first().unwrap().1;
            let big_k = rows.last().unwrap().1;
            total += 1;
            if big_k < small_k {
                improved += 1;
            } else {
                eprintln!("workload {w} seg {seg}: k effect absent ({small_k} -> {big_k})");
            }
        }
        assert!(
            improved * 3 >= total * 2,
            "larger k should cut flips in most cells: {improved}/{total}"
        );
    }

    #[test]
    fn fig17_phases_behave() {
        let t = fig17(quick());
        let phase_mean = |prefix: &str| -> f64 {
            let vals: Vec<f64> = t
                .rows
                .iter()
                .filter(|r| r[0].starts_with(prefix))
                .map(|r| r[2].parse().unwrap())
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let p1_first: f64 = t.rows[0][2].parse().unwrap();
        let p1 = phase_mean("I:");
        let p2 = phase_mean("II:");
        let p4 = phase_mean("IV:");
        // Scenario I settles below its opening chunk; retraining (II)
        // improves further; unseen CIFAR (IV) degrades sharply.
        assert!(p1 < p1_first, "no settling: first={p1_first} mean={p1}");
        assert!(p2 < p1, "retrain did not help: {p2} vs {p1}");
        assert!(p4 > p2 * 1.5, "unseen data should hurt: {p4} vs {p2}");
    }

    #[test]
    fn fig13_more_segments_fewer_flips() {
        let t = fig13(quick());
        // Within the same pool size, the smaller segment (more segments)
        // should have a flip ratio no worse than the bigger segment.
        let mut by_pool: std::collections::HashMap<String, Vec<(usize, f64)>> = Default::default();
        for row in &t.rows {
            by_pool
                .entry(row[1].clone())
                .or_default()
                .push((row[0].parse().unwrap(), row[3].parse().unwrap()));
        }
        for (pool, mut rows) in by_pool {
            rows.sort_by_key(|r| r.0);
            let small_seg = rows.first().unwrap().1;
            let big_seg = rows.last().unwrap().1;
            assert!(
                small_seg <= big_seg * 1.4,
                "pool {pool}: small-seg ratio {small_seg} vs big-seg {big_seg}"
            );
        }
    }

    #[test]
    fn fig19_cdfs_monotone_and_terminal() {
        let t = fig19(quick());
        let addr: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let bits: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(addr.windows(2).all(|w| w[0] <= w[1]));
        assert!(bits.windows(2).all(|w| w[0] <= w[1]));
        assert!(*addr.last().unwrap() > 0.9);
        assert!(*bits.last().unwrap() > 0.9);
    }
}
