//! A uniform "write system" wrapper so every figure can stream the same
//! values through E2-NVM, the placement baselines, and the RBW in-place
//! baselines, each over its own identically seeded device.

use e2nvm_baselines::{InPlaceScheme, PlacementScheme};
use e2nvm_core::{E2Config, E2Engine, E2Error, PaddingType};
use e2nvm_sim::{
    DeviceConfig, DeviceStats, LogicalSegment, MemoryController, NvmDevice, PhysicalSegment,
    WearTracking,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Anything that can absorb a stream of values and report device stats.
pub trait WriteSystem {
    /// Display name.
    fn name(&self) -> String;
    /// Store one value somewhere on the device.
    fn write(&mut self, value: &[u8]) -> Result<(), String>;
    /// Cumulative device stats, including any scheme-level auxiliary
    /// flips.
    fn stats(&self) -> DeviceStats;
    /// Reset stats (after warm-up).
    fn reset_stats(&mut self);
    /// Mean placement-decision latency per write, ns (0 for non-ML).
    fn mean_predict_ns(&self) -> f64 {
        0.0
    }
    /// One-time model training cost, wall clock.
    fn train_time(&self) -> Duration {
        Duration::ZERO
    }
    /// Access to the underlying device (wear inspection).
    fn device(&self) -> &NvmDevice;
}

/// Build a device seeded with `contents` (cycled over the pool).
pub fn seeded_device(
    segment_bytes: usize,
    num_segments: usize,
    wear: WearTracking,
    contents: &[Vec<u8>],
) -> NvmDevice {
    let cfg = DeviceConfig::builder()
        .segment_bytes(segment_bytes)
        .num_segments(num_segments)
        .block_bytes(segment_bytes.clamp(64, 256))
        .wear_tracking(wear)
        .build()
        .expect("valid device config");
    let mut dev = NvmDevice::new(cfg);
    if !contents.is_empty() {
        for i in 0..num_segments {
            let item = &contents[i % contents.len()];
            let mut data = item.clone();
            data.resize(segment_bytes, 0);
            dev.seed_segment(PhysicalSegment(i), &data).expect("seed");
        }
    }
    dev
}

/// Pad/truncate a value to the device segment size.
fn fit(value: &[u8], segment_bytes: usize) -> Vec<u8> {
    let mut v = value.to_vec();
    v.truncate(segment_bytes);
    v
}

// ---------------------------------------------------------------------
// In-place (RBW) systems
// ---------------------------------------------------------------------

/// Round-robin in-place updates through an RBW scheme — models prior
/// methods that "pick the memory location for a write operation
/// arbitrarily" and overwrite in place.
pub struct InPlaceSystem {
    scheme: Box<dyn InPlaceScheme>,
    controller: MemoryController,
    next: usize,
    aux_flips: u64,
}

impl InPlaceSystem {
    /// Wrap a scheme over a device.
    pub fn new(scheme: Box<dyn InPlaceScheme>, device: NvmDevice) -> Self {
        Self {
            scheme,
            controller: MemoryController::without_wear_leveling(device),
            next: 0,
            aux_flips: 0,
        }
    }

    /// Same, but behind wear leveling with period ψ.
    pub fn with_wear_leveling(scheme: Box<dyn InPlaceScheme>, device: NvmDevice, psi: u64) -> Self {
        Self {
            scheme,
            controller: MemoryController::with_random_swap(device, psi, 0xE2),
            next: 0,
            aux_flips: 0,
        }
    }

    /// Same, behind Start-Gap rotation with period ψ. The controller
    /// reserves one physical slot as the gap, so the system's logical
    /// pool is one segment smaller than the device.
    pub fn with_start_gap(scheme: Box<dyn InPlaceScheme>, device: NvmDevice, psi: u64) -> Self {
        Self {
            scheme,
            controller: MemoryController::with_start_gap(device, psi),
            next: 0,
            aux_flips: 0,
        }
    }
}

impl WriteSystem for InPlaceSystem {
    fn name(&self) -> String {
        self.scheme.name().to_string()
    }

    fn write(&mut self, value: &[u8]) -> Result<(), String> {
        let seg = LogicalSegment(self.next % self.controller.num_segments());
        self.next += 1;
        let seg_bytes = self.controller.device().config().segment_bytes;
        let value = fit(value, seg_bytes);
        let old = self.controller.peek(seg).map_err(|e| e.to_string())?[..value.len()].to_vec();
        let enc = self.scheme.encode(seg.index(), &old, &value);
        self.aux_flips += enc.aux_bits_flipped;
        self.controller
            .write_at(seg, 0, &enc.stored)
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        let mut s = self.controller.stats().clone();
        s.bits_flipped += self.aux_flips;
        s.bits_programmed += self.aux_flips;
        s
    }

    fn reset_stats(&mut self) {
        self.controller.reset_stats();
        self.aux_flips = 0;
    }

    fn device(&self) -> &NvmDevice {
        self.controller.device()
    }
}

// ---------------------------------------------------------------------
// Placement-scheme systems (DATACON / Hamming-Tree / PNW)
// ---------------------------------------------------------------------

/// Streams values through a [`PlacementScheme`], keeping the pool at a
/// target occupancy by recycling the oldest occupied segment.
pub struct PlacementSystem {
    scheme: Box<dyn PlacementScheme>,
    controller: MemoryController,
    occupied: VecDeque<LogicalSegment>,
    max_occupied: usize,
    predict_ns: u128,
    predictions: u64,
    train_time: Duration,
}

impl PlacementSystem {
    /// Wrap and initialize the scheme on the seeded device (all
    /// segments start free).
    pub fn new(
        mut scheme: Box<dyn PlacementScheme>,
        device: NvmDevice,
        occupancy: f64,
        seed: u64,
    ) -> Self {
        Self::with_controller(
            MemoryController::without_wear_leveling,
            &mut scheme,
            device,
            occupancy,
            seed,
        )
        .with_scheme(scheme)
    }

    fn with_controller(
        make: impl FnOnce(NvmDevice) -> MemoryController,
        scheme: &mut Box<dyn PlacementScheme>,
        device: NvmDevice,
        occupancy: f64,
        seed: u64,
    ) -> PlacementSystemPartial {
        let controller = make(device);
        let free: Vec<(LogicalSegment, Vec<u8>)> = (0..controller.num_segments())
            .map(|i| {
                let seg = LogicalSegment(i);
                (seg, controller.peek(seg).expect("in range").to_vec())
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let t0 = Instant::now();
        scheme.initialize(&free, &mut rng);
        let train_time = t0.elapsed();
        let max_occupied = ((controller.num_segments() as f64) * occupancy)
            .floor()
            .max(1.0) as usize;
        PlacementSystemPartial {
            controller,
            max_occupied,
            train_time,
        }
    }

    /// Wear-leveling variant (random swap every ψ writes).
    pub fn with_wear_leveling(
        mut scheme: Box<dyn PlacementScheme>,
        device: NvmDevice,
        occupancy: f64,
        psi: u64,
        seed: u64,
    ) -> Self {
        Self::with_controller(
            |dev| MemoryController::with_random_swap(dev, psi, 0xE2),
            &mut scheme,
            device,
            occupancy,
            seed,
        )
        .with_scheme(scheme)
    }
}

struct PlacementSystemPartial {
    controller: MemoryController,
    max_occupied: usize,
    train_time: Duration,
}

impl PlacementSystemPartial {
    fn with_scheme(self, scheme: Box<dyn PlacementScheme>) -> PlacementSystem {
        PlacementSystem {
            scheme,
            controller: self.controller,
            occupied: VecDeque::new(),
            max_occupied: self.max_occupied,
            predict_ns: 0,
            predictions: 0,
            train_time: self.train_time,
        }
    }
}

impl WriteSystem for PlacementSystem {
    fn name(&self) -> String {
        self.scheme.name().to_string()
    }

    fn write(&mut self, value: &[u8]) -> Result<(), String> {
        // Keep occupancy bounded: recycle the oldest segment first.
        if self.occupied.len() >= self.max_occupied {
            let victim = self.occupied.pop_front().expect("occupied nonempty");
            let content = self
                .controller
                .peek(victim)
                .map_err(|e| e.to_string())?
                .to_vec();
            self.scheme.recycle(victim, &content);
        }
        let seg_bytes = self.controller.device().config().segment_bytes;
        let value = fit(value, seg_bytes);
        let t0 = Instant::now();
        let seg = self
            .scheme
            .choose(&value)
            .ok_or_else(|| format!("{}: pool exhausted", self.scheme.name()))?;
        self.predict_ns += t0.elapsed().as_nanos();
        self.predictions += 1;
        self.controller
            .write_at(seg, 0, &value)
            .map_err(|e| e.to_string())?;
        self.occupied.push_back(seg);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.controller.stats().clone()
    }

    fn reset_stats(&mut self) {
        self.controller.reset_stats();
        self.predict_ns = 0;
        self.predictions = 0;
    }

    fn mean_predict_ns(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.predict_ns as f64 / self.predictions as f64
        }
    }

    fn train_time(&self) -> Duration {
        self.train_time
    }

    fn device(&self) -> &NvmDevice {
        self.controller.device()
    }
}

// ---------------------------------------------------------------------
// E2-NVM system
// ---------------------------------------------------------------------

/// E2-NVM behind the same streaming interface.
pub struct E2System {
    engine: E2Engine,
    occupied: VecDeque<LogicalSegment>,
    max_occupied: usize,
    train_time: Duration,
}

impl E2System {
    /// Build and train over a seeded device.
    pub fn new(device: NvmDevice, cfg: E2Config, occupancy: f64) -> Result<Self, E2Error> {
        let num_segments = device.num_segments();
        let controller = MemoryController::without_wear_leveling(device);
        Self::build(controller, num_segments, cfg, occupancy)
    }

    /// Wear-leveling variant.
    pub fn with_wear_leveling(
        device: NvmDevice,
        cfg: E2Config,
        occupancy: f64,
        psi: u64,
    ) -> Result<Self, E2Error> {
        let num_segments = device.num_segments();
        let controller = MemoryController::with_random_swap(device, psi, 0xE2);
        Self::build(controller, num_segments, cfg, occupancy)
    }

    /// Start-Gap variant: the engine's logical pool is one segment
    /// smaller than the device (the controller reserves the gap slot).
    pub fn with_start_gap(
        device: NvmDevice,
        cfg: E2Config,
        occupancy: f64,
        psi: u64,
    ) -> Result<Self, E2Error> {
        let controller = MemoryController::with_start_gap(device, psi);
        let num_segments = controller.num_segments();
        Self::build(controller, num_segments, cfg, occupancy)
    }

    fn build(
        controller: MemoryController,
        num_segments: usize,
        cfg: E2Config,
        occupancy: f64,
    ) -> Result<Self, E2Error> {
        let mut engine = E2Engine::new(controller, cfg)?;
        let t0 = Instant::now();
        engine.train()?;
        let train_time = t0.elapsed();
        let max_occupied = ((num_segments as f64) * occupancy).floor().max(1.0) as usize;
        Ok(Self {
            engine,
            occupied: VecDeque::new(),
            max_occupied,
            train_time,
        })
    }

    /// Quick E2 config for experiments at a given segment size / k.
    pub fn quick_config(segment_bytes: usize, k: usize) -> E2Config {
        E2Config::builder()
            .fast(segment_bytes, k)
            .latent_dim(8)
            .hidden(vec![64])
            .pretrain_epochs(20)
            .joint_epochs(5)
            .lr(3e-3)
            .beta(0.1)
            .train_sample_cap(768)
            .padding_type(PaddingType::Zero)
            .build()
            .unwrap()
    }

    /// Borrow the engine (retraining experiments).
    pub fn engine_mut(&mut self) -> &mut E2Engine {
        &mut self.engine
    }
}

impl WriteSystem for E2System {
    fn name(&self) -> String {
        format!("E2-NVM(k={})", self.engine.config().k)
    }

    fn write(&mut self, value: &[u8]) -> Result<(), String> {
        if self.occupied.len() >= self.max_occupied {
            let victim = self.occupied.pop_front().expect("occupied nonempty");
            self.engine
                .recycle_segment(victim)
                .map_err(|e| e.to_string())?;
        }
        let seg_bytes = self.engine.config().segment_bytes;
        let value = fit(value, seg_bytes);
        let (seg, _) = self.engine.place_value(&value).map_err(|e| e.to_string())?;
        self.occupied.push_back(seg);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.engine.device_stats().clone()
    }

    fn reset_stats(&mut self) {
        self.engine.reset_device_stats();
    }

    fn mean_predict_ns(&self) -> f64 {
        self.engine.prediction_stats().mean_ns()
    }

    fn train_time(&self) -> Duration {
        self.train_time
    }

    fn device(&self) -> &NvmDevice {
        self.engine.controller().device()
    }
}

/// Stream `values` through a system, with the first `warmup` writes
/// excluded from the stats.
pub fn stream(
    system: &mut dyn WriteSystem,
    values: &[Vec<u8>],
    warmup: usize,
) -> Result<DeviceStats, String> {
    for (i, v) in values.iter().enumerate() {
        if i == warmup {
            system.reset_stats();
        }
        system.write(v)?;
    }
    Ok(system.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_baselines::{Datacon, Dcw, FlipNWrite, HammingTree, Pnw, PnwMode};
    use e2nvm_workloads::DatasetKind;

    fn dataset(n: usize) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(5);
        DatasetKind::MnistLike.generate_sized(n, 64, &mut rng)
    }

    #[test]
    fn inplace_system_counts_flips() {
        let data = dataset(32);
        let dev = seeded_device(64, 16, WearTracking::None, &data);
        let mut sys = InPlaceSystem::new(Box::new(Dcw), dev);
        let stats = stream(&mut sys, &data, 4).unwrap();
        assert_eq!(stats.writes, 28);
        assert!(stats.bits_flipped > 0);
    }

    #[test]
    fn fnw_beats_dcw_on_random_overwrites() {
        let mut rng = StdRng::seed_from_u64(6);
        let random: Vec<Vec<u8>> = (0..64)
            .map(|_| (0..64).map(|_| rand::Rng::gen::<u8>(&mut rng)).collect())
            .collect();
        let dev = seeded_device(64, 8, WearTracking::None, &random);
        let mut dcw = InPlaceSystem::new(Box::new(Dcw), dev.clone());
        let mut fnw = InPlaceSystem::new(Box::new(FlipNWrite::default()), dev);
        let d = stream(&mut dcw, &random, 0).unwrap();
        let f = stream(&mut fnw, &random, 0).unwrap();
        assert!(
            f.bits_flipped <= d.bits_flipped,
            "fnw={} dcw={}",
            f.bits_flipped,
            d.bits_flipped
        );
    }

    #[test]
    fn placement_system_streams_with_occupancy() {
        let data = dataset(64);
        let dev = seeded_device(64, 32, WearTracking::None, &data);
        let mut sys = PlacementSystem::new(Box::new(Datacon::new(false)), dev, 0.5, 1);
        let stats = stream(&mut sys, &data, 0).unwrap();
        assert_eq!(stats.writes, 64);
    }

    #[test]
    fn hamming_tree_beats_datacon_on_clusterable_data() {
        let data = dataset(128);
        let dev = seeded_device(64, 64, WearTracking::None, &data);
        let mut tree = PlacementSystem::new(Box::new(HammingTree::new()), dev.clone(), 0.5, 1);
        let mut dc = PlacementSystem::new(Box::new(Datacon::new(false)), dev, 0.5, 1);
        let t = stream(&mut tree, &data, 16).unwrap();
        let d = stream(&mut dc, &data, 16).unwrap();
        assert!(
            t.bits_flipped < d.bits_flipped,
            "tree={} datacon={}",
            t.bits_flipped,
            d.bits_flipped
        );
    }

    #[test]
    fn e2_system_end_to_end() {
        let data = dataset(96);
        let dev = seeded_device(64, 48, WearTracking::None, &data);
        let mut e2 = E2System::new(dev, E2System::quick_config(64, 4), 0.5).unwrap();
        let stats = stream(&mut e2, &data, 16).unwrap();
        assert_eq!(stats.writes, 80);
        assert!(e2.mean_predict_ns() > 0.0);
        assert!(e2.train_time() > Duration::ZERO);
    }

    #[test]
    fn e2_beats_pnw_raw_flip_count() {
        // The headline Figure 10 ordering at matched k on clusterable
        // image data.
        let data = dataset(256);
        let dev = seeded_device(64, 128, WearTracking::None, &data);
        let mut e2 = E2System::new(dev.clone(), E2System::quick_config(64, 10), 0.5).unwrap();
        let mut pnw = PlacementSystem::new(
            Box::new(Pnw::new(10, PnwMode::PcaKMeans { components: 8 })),
            dev,
            0.5,
            2,
        );
        let e = stream(&mut e2, &data, 64).unwrap();
        let p = stream(&mut pnw, &data, 64).unwrap();
        assert!(
            (e.bits_flipped as f64) < (p.bits_flipped as f64) * 1.15,
            "e2={} pnw={}",
            e.bits_flipped,
            p.bits_flipped
        );
    }
}
