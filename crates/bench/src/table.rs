//! Plain-text table + CSV output for experiment results.

use std::io::Write;
use std::path::Path;

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("fig01", ...).
    pub id: String,
    /// Human title (what the paper's figure shows).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table (scaling factors,
    /// observations to compare against the paper).
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "table {}: row width mismatch",
            self.id
        );
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("=== {} — {} ===\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write as `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Format a float compactly.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_counts() {
        let mut t = Table::new("t1", "demo", &["k", "flips"]);
        t.row(vec!["1".into(), "123.4".into()]);
        t.row(vec!["30".into(), "5".into()]);
        t.note("scaled 1:100");
        let s = t.render();
        assert!(s.contains("t1"));
        assert!(s.contains("flips"));
        assert!(s.contains("scaled 1:100"));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("t2", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("e2nvm_table_test");
        let mut t = Table::new("t3", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t3.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.25), "42.2");
        assert_eq!(fmt(1.23456), "1.235");
    }
}
