//! Regenerate the paper's figures.
//!
//! ```text
//! experiments all --quick            # every figure, CI-sized
//! experiments fig10 fig12            # selected figures, full-sized
//! experiments all --out results/     # also write CSVs
//! ```

use e2nvm_bench::{figures, Scale, Table};
use std::path::PathBuf;
use std::time::Instant;

type FigFn = fn(Scale) -> Table;

const FIGURES: &[(&str, &str, FigFn)] = &[
    (
        "fig01",
        "device energy/latency vs content difference",
        figures::device::fig01,
    ),
    (
        "fig02",
        "bit updates vs wear-leveling period",
        figures::device::fig02,
    ),
    (
        "fig04",
        "clustering scalability (K-means/PCA/VAE)",
        figures::model::fig04,
    ),
    (
        "fig07",
        "DAP memory + energy vs #segments",
        figures::engine::fig07,
    ),
    (
        "fig08",
        "SSE elbow + energy valley vs K",
        figures::model::fig08,
    ),
    (
        "fig09",
        "VAE loss curves per dataset",
        figures::model::fig09,
    ),
    (
        "fig10",
        "write schemes vs k per dataset",
        figures::engine::fig10,
    ),
    (
        "fig11",
        "YCSB energy vs segment size and k",
        figures::engine::fig11,
    ),
    (
        "fig12",
        "index structures bare vs E2-plugged",
        figures::structures::fig12,
    ),
    ("fig13", "segment x pool size grid", figures::engine::fig13),
    (
        "fig14",
        "padding types x locations",
        figures::padding::fig14,
    ),
    (
        "fig15",
        "learned padding vs padded fraction",
        figures::padding::fig15,
    ),
    (
        "fig16",
        "energy over train/write/retrain phases",
        figures::structures::fig16,
    ),
    (
        "fig17",
        "dynamic scenarios over time",
        figures::engine::fig17,
    ),
    ("fig18", "training cost vs #segments", figures::model::fig18),
    ("fig19", "wear CDFs", figures::engine::fig19),
    (
        "abl01",
        "ablation: joint-training gamma",
        figures::ablations::abl01,
    ),
    (
        "abl02",
        "ablation: media DCW on/off",
        figures::ablations::abl02,
    ),
    (
        "abl03",
        "ablation: DAP first-fit vs search",
        figures::ablations::abl03,
    ),
    (
        "life01",
        "writes to first segment death per scheme",
        figures::endurance::life01,
    ),
    (
        "life02",
        "E2-NVM graceful degradation past first death",
        figures::endurance::life02,
    ),
];

fn usage() -> ! {
    eprintln!("usage: experiments <all | fig01 fig02 ...> [--quick] [--out DIR]");
    eprintln!("available figures:");
    for (id, desc, _) in FIGURES {
        eprintln!("  {id}  {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut selected: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                let dir = iter.next().unwrap_or_else(|| usage());
                out = Some(PathBuf::from(dir));
            }
            "all" => selected.extend(FIGURES.iter().map(|(id, _, _)| *id)),
            other => {
                if let Some((id, _, _)) = FIGURES.iter().find(|(id, _, _)| *id == other) {
                    selected.push(id);
                } else {
                    eprintln!("unknown figure: {other}");
                    usage();
                }
            }
        }
    }
    if selected.is_empty() {
        usage();
    }
    selected.dedup();

    let scale = Scale { quick };
    println!(
        "E2-NVM experiment harness — {} mode, {} figure(s)\n",
        if quick { "quick" } else { "full" },
        selected.len()
    );
    let total = Instant::now();
    for id in selected {
        let (_, _, f) = FIGURES
            .iter()
            .find(|(fid, _, _)| *fid == id)
            .expect("validated id");
        let t0 = Instant::now();
        let table = f(scale);
        table.print();
        println!("  [{} completed in {:.1?}]\n", id, t0.elapsed());
        if let Some(dir) = &out {
            if let Err(e) = table.write_csv(dir) {
                eprintln!("warning: failed to write {id}.csv: {e}");
            }
        }
    }
    println!("all done in {:.1?}", total.elapsed());
}
