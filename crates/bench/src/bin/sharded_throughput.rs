//! Multi-threaded PUT throughput of the sharded serving engine,
//! sweeping the shard count 1 → 16 under an 8-client zipfian workload.
//!
//! Two measurements per shard count:
//!
//! * **wall-clock**: 8 OS threads hammer the engine concurrently;
//!   throughput is ops / elapsed wall time. On a multi-core host this
//!   shows the lock-contention win directly; on a single-core host all
//!   configurations collapse to one core's service rate.
//! * **capacity**: the same 8 client streams are replayed and each
//!   shard's *service time* is accumulated (measured padding+prediction
//!   nanoseconds plus the device model's write latency). Shards share no
//!   state, so the sharded makespan is the busiest shard's service time;
//!   capacity = ops / makespan. This is the simulator's own time domain,
//!   consistent with how every other figure in this repository reports
//!   latency, and it is independent of how many host cores the benchmark
//!   happens to get.
//!
//! Output: a table on stdout and `results/sharded_throughput.md`.
//!
//! Run: `cargo run -p e2nvm-bench --release --bin sharded_throughput`
//! (add `--quick` for a CI-sized run).

use e2nvm_core::{E2Config, PaddingType, ShardedEngine};
use e2nvm_sim::{partition_controllers, DeviceConfig, LogicalSegment, MemoryController};
use e2nvm_telemetry::TelemetryRegistry;
use e2nvm_workloads::zipf::{scramble, Zipfian};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::time::Instant;

const THREADS: usize = 8;
const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

struct RunResult {
    shards: usize,
    ops: u64,
    wall_ops_per_s: f64,
    capacity_ops_per_s: f64,
    makespan_ms: f64,
    busiest_frac: f64,
}

fn seeded_value(key: u64, seg_bytes: usize, rng: &mut StdRng) -> Vec<u8> {
    // Two content families, like the device's resident data, so the
    // placement model has structure to exploit.
    let base = if key & 1 == 0 { 0x00u8 } else { 0xFF };
    (0..seg_bytes * 3 / 4)
        .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
        .collect()
}

fn build_engine(num_shards: usize, total_segments: usize, seg_bytes: usize) -> ShardedEngine {
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(seg_bytes)
        .num_segments(total_segments)
        .build()
        .unwrap();
    // No background retraining: keeps the sweep comparable across shard
    // counts (no retraining storms at small per-shard pool sizes).
    let cfg = E2Config::builder()
        .fast(seg_bytes, 2)
        .pretrain_epochs(4)
        .joint_epochs(1)
        .retrain_min_free(0)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0xE2);
    let controllers: Vec<MemoryController> = partition_controllers(&dev_cfg, num_shards)
        .unwrap()
        .into_iter()
        .map(|(_, mut mc)| {
            for i in 0..mc.num_segments() {
                let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
                let content: Vec<u8> = (0..seg_bytes)
                    .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                    .collect();
                mc.seed(LogicalSegment(i), &content).unwrap();
            }
            mc
        })
        .collect();
    ShardedEngine::train(controllers, &cfg).unwrap()
}

/// One client stream: zipf-ranked, scrambled into the keyspace.
fn client_keys(stream: usize, ops: usize, keyspace: u64) -> Vec<u64> {
    let zipf = Zipfian::new(keyspace as usize);
    let mut rng = StdRng::seed_from_u64(0xC11E_4700 + stream as u64);
    (0..ops)
        .map(|_| scramble(zipf.sample(&mut rng) as u64) % keyspace)
        .collect()
}

fn run_one(
    num_shards: usize,
    total_segments: usize,
    seg_bytes: usize,
    ops_per_thread: usize,
) -> RunResult {
    let keyspace = (total_segments / 4) as u64;
    let engine = build_engine(num_shards, total_segments, seg_bytes);
    // Live registry during the measured phase — a no-op ZST without the
    // `telemetry` feature, so this same binary measures both the
    // instrumented and the compiled-away configuration.
    let registry = TelemetryRegistry::new();
    engine.attach_telemetry(&registry);

    // Preload every key so the measured phase is pure UPDATE traffic.
    let mut rng = StdRng::seed_from_u64(1);
    for key in 0..keyspace {
        let value = seeded_value(key, seg_bytes, &mut rng);
        engine.put(key, &value).unwrap();
    }

    // Phase A — wall clock, 8 real threads.
    let t0 = Instant::now();
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = engine.clone();
            let keys = client_keys(t, ops_per_thread, keyspace);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xAB + t as u64);
                for key in keys {
                    let value = seeded_value(key, seg_bytes, &mut rng);
                    engine.put(key, &value).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let wall = t0.elapsed();
    let ops = (THREADS * ops_per_thread) as u64;
    let wall_ops_per_s = ops as f64 / wall.as_secs_f64();

    // Phase B — serving capacity in the simulator's time domain: replay
    // the same 8 streams without thread-scheduling noise, then charge
    // each shard its own service time. Shards are independent serial
    // servers, so the sharded makespan is the busiest shard.
    let engine = build_engine(num_shards, total_segments, seg_bytes);
    engine.attach_telemetry(&registry);
    let mut rng = StdRng::seed_from_u64(1);
    for key in 0..keyspace {
        let value = seeded_value(key, seg_bytes, &mut rng);
        engine.put(key, &value).unwrap();
    }
    engine.reset_device_stats();
    let pred_before: Vec<u128> = engine
        .shards()
        .map(|s| s.prediction_stats().total_ns)
        .collect();
    let mut rngs: Vec<StdRng> = (0..THREADS)
        .map(|t| StdRng::seed_from_u64(0xAB + t as u64))
        .collect();
    let streams: Vec<Vec<u64>> = (0..THREADS)
        .map(|t| client_keys(t, ops_per_thread, keyspace))
        .collect();
    for i in 0..ops_per_thread {
        for (t, stream) in streams.iter().enumerate() {
            let key = stream[i];
            let value = seeded_value(key, seg_bytes, &mut rngs[t]);
            engine.put(key, &value).unwrap();
        }
    }
    let shard_service_ns: Vec<f64> = engine
        .shards()
        .zip(pred_before)
        .map(|(s, before)| {
            let predict = (s.prediction_stats().total_ns - before) as f64;
            predict + s.device_stats().latency_ns
        })
        .collect();
    let makespan_ns = shard_service_ns.iter().cloned().fold(0.0, f64::max);
    let total_ns: f64 = shard_service_ns.iter().sum();
    let capacity_ops_per_s = ops as f64 / (makespan_ns / 1e9);

    RunResult {
        shards: num_shards,
        ops,
        wall_ops_per_s,
        capacity_ops_per_s,
        makespan_ms: makespan_ns / 1e6,
        busiest_frac: if total_ns > 0.0 {
            makespan_ns / total_ns
        } else {
            1.0
        },
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (total_segments, seg_bytes, ops_per_thread) = if quick {
        (512, 64, 300)
    } else {
        (2048, 64, 2500)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "sharded PUT throughput — {THREADS} client threads, zipf(0.99) keys, host cores: {cores}"
    );
    println!(
        "{:>7} {:>9} {:>14} {:>16} {:>13} {:>9}",
        "shards", "ops", "wall ops/s", "capacity ops/s", "makespan ms", "hot frac"
    );

    let mut results = Vec::new();
    for &s in &SHARD_COUNTS {
        let r = run_one(s, total_segments, seg_bytes, ops_per_thread);
        println!(
            "{:>7} {:>9} {:>14.0} {:>16.0} {:>13.1} {:>9.2}",
            r.shards, r.ops, r.wall_ops_per_s, r.capacity_ops_per_s, r.makespan_ms, r.busiest_frac
        );
        results.push(r);
    }

    let base = results[0].capacity_ops_per_s;
    let mut md = String::new();
    md.push_str("# Sharded serving: PUT throughput vs shard count\n\n");
    md.push_str(&format!(
        "{THREADS} client threads, zipf(0.99) key distribution, {total_segments} segments × {seg_bytes} B, \
         pure UPDATE traffic after preload. Host cores during this run: {cores}.\n\n"
    ));
    md.push_str(
        "`wall ops/s` is elapsed-time throughput of 8 OS threads (bounded by host cores); \
         `capacity ops/s` is the serving capacity in the simulator's time domain: each shard is \
         charged its measured prediction time plus the device model's write latency, and the \
         makespan is the busiest shard — the architectural scaling that materialises on a host \
         with ≥ `shards` cores. `hot frac` is the busiest shard's share of total service time \
         (1/shards would be a perfect split; zipf skew keeps it above that).\n\n",
    );
    md.push_str("| shards | ops | wall ops/s | capacity ops/s | speedup vs 1 shard |\n");
    md.push_str("|-------:|----:|-----------:|---------------:|-------------------:|\n");
    for r in &results {
        md.push_str(&format!(
            "| {} | {} | {:.0} | {:.0} | {:.2}× |\n",
            r.shards,
            r.ops,
            r.wall_ops_per_s,
            r.capacity_ops_per_s,
            r.capacity_ops_per_s / base
        ));
    }
    let speedup8 = results
        .iter()
        .find(|r| r.shards == 8)
        .map(|r| r.capacity_ops_per_s / base)
        .unwrap_or(0.0);
    md.push_str(&format!(
        "\n8 shards sustain **{speedup8:.2}×** the single-shard (SharedEngine-equivalent) PUT capacity.\n"
    ));

    std::fs::create_dir_all("results").ok();
    // Quick runs get their own file so a CI-sized sweep never clobbers
    // full-scale numbers.
    let path = if quick {
        "results/sharded_throughput_quick.md"
    } else {
        "results/sharded_throughput.md"
    };
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(md.as_bytes()).unwrap();
    println!("\nwrote {path}");

    write_overhead_record(&results, quick);
}

/// Noise-resistant instrumentation-cost probe: single-threaded UPDATE
/// batches against a 1-shard engine, scored by the *fastest* batch —
/// the min over repeated identical batches estimates the true service
/// cost with scheduling noise stripped out (unlike the contended
/// 8-thread sweep above, which on a busy host swings far more than the
/// few-percent effect being measured).
fn overhead_probe(seg_bytes: usize) -> f64 {
    // Enough batches to span several seconds of wall time: the min
    // then reliably lands in a fast CPU window even on a host with
    // slow-period drift much larger than the effect being measured.
    const BATCHES: usize = 400;
    const BATCH_OPS: usize = 200;
    let keyspace = 64u64;
    let engine = build_engine(1, 256, seg_bytes);
    let registry = TelemetryRegistry::new();
    engine.attach_telemetry(&registry);
    let mut rng = StdRng::seed_from_u64(1);
    for key in 0..keyspace {
        let value = seeded_value(key, seg_bytes, &mut rng);
        engine.put(key, &value).unwrap();
    }
    let mut best = f64::INFINITY;
    for batch in 0..BATCHES {
        let t0 = Instant::now();
        for i in 0..BATCH_OPS {
            let key = (batch * BATCH_OPS + i) as u64 % keyspace;
            let value = seeded_value(key, seg_bytes, &mut rng);
            engine.put(key, &value).unwrap();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    BATCH_OPS as f64 / best
}

/// Record this build state's numbers (`telemetry` feature on or off) and,
/// once both states have run, compose the overhead comparison report.
fn write_overhead_record(results: &[RunResult], quick: bool) {
    let state = if cfg!(feature = "telemetry") {
        "on"
    } else {
        "off"
    };
    let probe = overhead_probe(64);
    let mut txt = format!("mode={}\n", if quick { "quick" } else { "full" });
    txt.push_str(&format!("probe_ops_per_s={probe:.1}\n"));
    for r in results {
        txt.push_str(&format!(
            "{} {} {:.1} {:.1}\n",
            r.shards, r.ops, r.wall_ops_per_s, r.capacity_ops_per_s
        ));
    }
    let txt_path = format!("results/telemetry_overhead_{state}.txt");
    std::fs::write(&txt_path, txt).unwrap();
    println!("wrote {txt_path} (telemetry {state})");

    struct Record {
        probe: f64,
        rows: Vec<(usize, f64, f64)>,
    }
    let parse = |path: &str| -> Option<Record> {
        let body = std::fs::read_to_string(path).ok()?;
        let probe = body
            .lines()
            .find_map(|l| l.strip_prefix("probe_ops_per_s="))?
            .parse()
            .ok()?;
        let rows: Vec<(usize, f64, f64)> = body
            .lines()
            .filter(|l| !l.contains('='))
            .filter_map(|l| {
                let f: Vec<&str> = l.split_whitespace().collect();
                Some((
                    f.first()?.parse().ok()?,
                    f.get(2)?.parse().ok()?,
                    f.get(3)?.parse().ok()?,
                ))
            })
            .collect();
        (!rows.is_empty()).then_some(Record { probe, rows })
    };
    let (Some(on), Some(off)) = (
        parse("results/telemetry_overhead_on.txt"),
        parse("results/telemetry_overhead_off.txt"),
    ) else {
        return;
    };
    if on.rows.len() != off.rows.len() {
        return;
    }

    let headline = (off.probe - on.probe) / off.probe * 100.0;
    let mut md = String::from("# Telemetry overhead: PUT throughput on vs off\n\n");
    md.push_str(
        "Same `sharded_throughput` binary built twice: with the `telemetry` feature \
         (live atomics-backed counters, gauges, and histograms on the put path) and \
         without it (every telemetry type is a zero-sized no-op). Positive deltas mean \
         the instrumented build is slower.\n\n",
    );
    md.push_str(&format!(
        "**Headline (single-threaded min-batch probe): {:.0} ops/s off vs {:.0} ops/s on \
         → {headline:+.2}% regression** (acceptance bound: < 2%). The probe times repeated \
         identical UPDATE batches and keeps the fastest, so host scheduling noise — far \
         larger than the effect measured — is stripped out.\n\n",
        off.probe, on.probe
    ));
    md.push_str(
        "For context, the contended 8-thread sweep from the same runs (noisy on a
busy host; the probe above is the comparable number):\n\n",
    );
    md.push_str("| shards | capacity off (ops/s) | capacity on (ops/s) | delta |\n");
    md.push_str("|-------:|---------------------:|--------------------:|------:|\n");
    for (a, b) in off.rows.iter().zip(on.rows.iter()) {
        let delta = (a.2 - b.2) / a.2 * 100.0;
        md.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:+.2}% |\n",
            a.0, a.2, b.2, delta
        ));
    }
    std::fs::write("results/telemetry_overhead.md", md).unwrap();
    println!("wrote results/telemetry_overhead.md (probe delta {headline:+.2}%)");
}
