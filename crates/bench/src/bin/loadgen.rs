//! Network load generator for `e2nvm-server`: drives the full YCSB
//! core matrix A–F over loopback with configurable connections ×
//! pipeline depth and records sustained throughput plus per-workload
//! device energy in `results/net_throughput.md`.
//!
//! The six mixes exercise every wire path: A/B/C are the GET/PUT
//! mixes, D inserts new keys under the latest distribution (with a
//! capacity-aware admission budget so a finite simulated device never
//! answers a full-store error mid-measurement), E drives short ranges
//! through the streaming SCAN_STREAM opcode (chunked multi-frame
//! responses), and F issues read-modify-writes as a pipelined GET→PUT
//! pair per key — both frames in one batch, in order, so the write
//! always follows its read on the same connection. The plain run
//! drives the whole matrix twice — `coalesce_puts` off, then on — and
//! reports the bit-flip delta the PUT-run coalescing buys per
//! workload.
//!
//! By default it boots its own 4-shard server on an ephemeral loopback
//! port (the in-process [`e2nvm_server::Server`], so one binary is a
//! complete experiment); pass `--addr HOST:PORT` to aim it at an
//! already-running `e2nvm-server` instead. Self-hosted servers set a
//! deliberately small 1 KiB scan-chunk bound so workload E's short
//! ranges genuinely exercise multi-chunk streams (the CI-checkable
//! `multi-chunk scan responses: N` line comes from server telemetry).
//!
//! With `--cache` the generator runs the whole suite twice — once
//! against a plain server, once against one fronted by the DRAM
//! read-through cache — and records the side-by-side comparison (with
//! per-workload hit rates when built with `--features telemetry`) in
//! `results/cache_throughput.md` instead.
//!
//! With `--compare-servers` it runs the suite across both serving
//! engines (the epoll reactor and the thread-per-connection baseline)
//! at a small and a large connection count, and records the grid in
//! `results/reactor_throughput.md` — the reactor's high-fan-in case
//! against the model it replaced.
//!
//! With `--recovery` it runs the kill-and-restart experiment instead:
//! boot a *separate* `e2nvm-server` process with `--data-dir`, drive
//! an acked PUT burst, SIGKILL the server mid-burst, restart it from
//! the same directory, and verify every acked write reads back —
//! printing the CI-checkable line `acked writes recovered: A/A
//! (lost 0)`. It also measures recovery boot vs retrain-from-scratch
//! boot and WAL-on vs WAL-off PUT throughput, and records everything
//! in `results/recovery.md`.
//!
//! With `--cluster` it runs the two failover experiments instead:
//! boot three *separate* `e2nvm-server` processes, route over them
//! with `e2nvm-cluster` (R=2 replication), then (1) SIGKILL one
//! server mid-burst and (2) wear one server's simulated device out
//! (`--fault-endurance`) until the health prober drains it — in both
//! cases verifying that every acked write reads back and printing the
//! CI-checkable `(lost 0)` lines. Before/after routing tables and
//! wear counters land in `results/cluster_failover.md`.
//!
//! Run: `cargo run -p e2nvm-bench --release --bin e2nvm-loadgen`
//! (add `--quick` for a CI-sized burst that writes the `_quick`
//! variant of the results file).
//!
//! Flags: `--connections N` (default 4), `--pipeline D` (default 16),
//! `--ops N` per connection per workload, `--shards`, `--segments`,
//! `--seg-bytes`, `--workloads A,B,C,D,E,F` (the plain default; the
//! `--cache` and `--compare-servers` experiments default to their
//! established A,B,C scope), `--addr`, `--cache`, `--cache-mb N`
//! (default 64), `--threaded` (serve with the thread-per-connection
//! baseline), `--workers N` (reactor pool size, 0 = auto),
//! `--compare-servers`, `--cluster`, `--quick`.
//!
//! After the run the binary prints `server error frames: N` (summed
//! across wire statuses from the final METRICS frame) so CI can assert
//! a clean run end to end.

use e2nvm_cluster::{ClusterClient, ClusterConfig, NodeState};
use e2nvm_kvstore::NvmKvStore as _;
use e2nvm_server::frame::{encode_request, Request, Status};
use e2nvm_server::{
    demo::demo_store, CacheConfig, Client, Server, ServerConfig, ServerHandle, ThreadedServer,
};
use e2nvm_telemetry::TelemetryRegistry;
use e2nvm_workloads::ycsb::{Operation, Ycsb};
use e2nvm_workloads::zipf::scramble;
use std::io::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct Args {
    addr: Option<String>,
    connections: usize,
    connections_set: bool,
    pipeline: usize,
    ops: usize,
    ops_set: bool,
    shards: usize,
    segments: usize,
    seg_bytes: usize,
    workloads: Vec<char>,
    workloads_set: bool,
    cache: bool,
    cache_mb: usize,
    threaded: bool,
    workers: usize,
    compare: bool,
    recovery: bool,
    cluster: bool,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 4,
        connections_set: false,
        pipeline: 16,
        ops: 0, // resolved after --quick is known
        ops_set: false,
        shards: 4,
        segments: 0,
        seg_bytes: 64,
        workloads: vec!['A', 'B', 'C', 'D', 'E', 'F'],
        workloads_set: false,
        cache: false,
        cache_mb: 64,
        threaded: false,
        workers: 0,
        compare: false,
        recovery: false,
        cluster: false,
        quick: false,
    };
    let mut ops_set = false;
    let mut segments_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--connections" => {
                args.connections = value("--connections").parse().unwrap();
                args.connections_set = true;
            }
            "--pipeline" => args.pipeline = value("--pipeline").parse().unwrap(),
            "--ops" => {
                args.ops = value("--ops").parse().unwrap();
                ops_set = true;
                args.ops_set = true;
            }
            "--shards" => args.shards = value("--shards").parse().unwrap(),
            "--segments" => {
                args.segments = value("--segments").parse().unwrap();
                segments_set = true;
            }
            "--seg-bytes" => args.seg_bytes = value("--seg-bytes").parse().unwrap(),
            "--workloads" => {
                args.workloads = value("--workloads")
                    .split(',')
                    .map(|w| {
                        let c = w.trim().to_ascii_uppercase();
                        assert!(
                            matches!(c.as_str(), "A" | "B" | "C" | "D" | "E" | "F"),
                            "supported workloads: A, B, C, D, E, F (got {w:?})"
                        );
                        c.chars().next().unwrap()
                    })
                    .collect();
                args.workloads_set = true;
            }
            "--cache" => args.cache = true,
            "--cache-mb" => args.cache_mb = value("--cache-mb").parse().unwrap(),
            "--threaded" => args.threaded = true,
            "--workers" => args.workers = value("--workers").parse().unwrap(),
            "--compare-servers" => args.compare = true,
            "--recovery" => args.recovery = true,
            "--cluster" => args.cluster = true,
            "--quick" => args.quick = true,
            other => panic!("unknown flag {other:?}"),
        }
    }
    if !ops_set {
        // The compare grid multiplies engines x connection counts, so
        // its per-connection default is smaller to keep total wall
        // clock comparable to a plain run. The recovery and cluster
        // experiments' ops are a *total* burst size, not per
        // connection (cluster puts are synchronous R-way fan-outs, so
        // their burst is smaller than the single-server one).
        args.ops = if args.recovery {
            if args.quick {
                800
            } else {
                12_000
            }
        } else if args.cluster {
            if args.quick {
                600
            } else {
                6_000
            }
        } else if args.quick {
            150
        } else if args.compare {
            1_000
        } else {
            25_000
        };
    }
    if !segments_set {
        args.segments = if args.quick { 256 } else { 2048 };
    }
    if !args.workloads_set && (args.cache || args.compare) {
        // The cache and engine-comparison experiments keep their
        // established A/B/C scope (their reports are GET/PUT-shaped
        // comparisons); the plain run covers the full matrix. An
        // explicit --workloads overrides either default.
        args.workloads = vec!['A', 'B', 'C'];
    }
    assert!(args.connections > 0, "--connections must be > 0");
    assert!(args.pipeline > 0, "--pipeline must be > 0");
    assert!(args.cache_mb > 0, "--cache-mb must be > 0");
    args
}

fn make_workload(name: char, records: u64, value_len: usize, seed: u64) -> Ycsb {
    match name {
        'A' => Ycsb::a(records, value_len, seed),
        'B' => Ycsb::b(records, value_len, seed),
        'D' => Ycsb::d(records, value_len, seed),
        'E' => Ycsb::e(records, value_len, seed),
        'F' => Ycsb::f(records, value_len, seed),
        _ => Ycsb::c(records, value_len, seed),
    }
}

#[derive(Default)]
struct ConnResult {
    ops: u64,
    reads: u64,
    writes: u64,
    scans: u64,
    rmws: u64,
    /// Workload-D/E inserts degraded to updates of an
    /// already-admitted insert key once the capacity budget ran out.
    degraded_inserts: u64,
    errors: u64,
}

/// One connection's pre-generated trace: the whole YCSB op stream
/// chunked into `pipeline`-deep batches — each already encoded to wire
/// bytes, paired with its response count — plus the read/write tallies
/// counted up front. Generating and encoding the trace before the
/// clock starts is the standard loadgen discipline: the timed region
/// then measures the server, not the Zipfian sampler or the codec.
struct ConnPlan {
    /// `(encoded request frames, terminal responses owed)` per batch.
    /// An RMW op owes two responses (its GET and its PUT); a streamed
    /// SCAN owes one *terminal* response however many chunk frames it
    /// spans — the drain counts with [`Client::recv_responses`].
    batches: Vec<(Vec<u8>, usize)>,
    result: ConnResult,
}

fn plan_connection(
    workload: char,
    records: u64,
    value_len: usize,
    seed: u64,
    ops: usize,
    pipeline: usize,
    insert_budget: usize,
) -> ConnPlan {
    let mut gen = make_workload(workload, records, value_len, seed);
    let mut result = ConnResult::default();
    // Capacity-aware insert admission (workloads D and E): the
    // simulated device is finite, so each connection may issue at most
    // `insert_budget` genuinely-new keys. Past the budget an insert
    // degrades to an update of a previously-admitted insert key —
    // write ratio and latest-skew are preserved, and the store never
    // answers a full-device error mid-measurement. (Connections share
    // the generator's insert key sequence, so distinct new keys across
    // the whole fleet are bounded by one budget, not the sum.)
    let mut admitted: Vec<u64> = Vec::new();
    let mut budget = insert_budget;
    let mut degrade_cursor = 0usize;
    let mut batches: Vec<(Vec<u8>, usize)> = Vec::with_capacity(ops.div_ceil(pipeline));
    let mut remaining = ops;
    while remaining > 0 {
        let depth = pipeline.min(remaining);
        let mut encoded = Vec::with_capacity(depth * 64);
        let mut owed = 0usize;
        for _ in 0..depth {
            result.ops += 1;
            match gen.next_op() {
                Operation::Read(key) => {
                    result.reads += 1;
                    owed += 1;
                    encode_request(&Request::Get { key }, &mut encoded);
                }
                Operation::Update(key, value) => {
                    result.writes += 1;
                    owed += 1;
                    encode_request(&Request::Put { key, value }, &mut encoded);
                }
                Operation::Insert(key, value) => {
                    let key = if budget > 0 {
                        budget -= 1;
                        admitted.push(key);
                        key
                    } else {
                        result.degraded_inserts += 1;
                        degrade_cursor += 1;
                        match admitted.get(degrade_cursor % admitted.len().max(1)) {
                            Some(&k) => k,
                            // Zero budget from the start: update the
                            // newest load-phase key instead.
                            None => scramble(records.saturating_sub(1)),
                        }
                    };
                    result.writes += 1;
                    owed += 1;
                    encode_request(&Request::Put { key, value }, &mut encoded);
                }
                Operation::Scan(key, len) => {
                    result.scans += 1;
                    owed += 1;
                    // Short range through the streaming opcode: lo is
                    // the sampled key, the limit (not hi) bounds the
                    // range length, exactly YCSB-E's contract.
                    encode_request(
                        &Request::ScanStream {
                            lo: key,
                            hi: u64::MAX,
                            limit: len as u32,
                        },
                        &mut encoded,
                    );
                }
                Operation::ReadModifyWrite(key, value) => {
                    // One op, two frames, one batch: the PUT rides the
                    // same pipelined batch as its GET and the server
                    // executes a connection's frames in order, so the
                    // write never reorders ahead of its read.
                    result.rmws += 1;
                    result.reads += 1;
                    result.writes += 1;
                    owed += 2;
                    encode_request(&Request::Get { key }, &mut encoded);
                    encode_request(&Request::Put { key, value }, &mut encoded);
                }
            }
        }
        remaining -= depth;
        batches.push((encoded, owed));
    }
    ConnPlan { batches, result }
}

struct WorkloadResult {
    name: char,
    ops: u64,
    reads: u64,
    writes: u64,
    scans: u64,
    rmws: u64,
    degraded_inserts: u64,
    errors: u64,
    elapsed_s: f64,
    /// Device-counter deltas over this workload's run, from STATS
    /// frames snapshotted between workloads: bit flips actually
    /// programmed into the simulated NVM and the device energy they
    /// (plus the line reads/writes) cost.
    bits_flipped: u64,
    energy_pj: f64,
    /// Cache hit/miss deltas over this workload's run, when the server
    /// exposes the `e2nvm_cache_*` series (cache on + telemetry built).
    cache_hits: Option<u64>,
    cache_misses: Option<u64>,
}

impl WorkloadResult {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 / self.elapsed_s
    }

    fn bits_per_op(&self) -> f64 {
        self.bits_flipped as f64 / self.ops.max(1) as f64
    }

    fn pj_per_op(&self) -> f64 {
        self.energy_pj / self.ops.max(1) as f64
    }

    fn hit_rate(&self) -> Option<f64> {
        match (self.cache_hits, self.cache_misses) {
            (Some(h), Some(m)) if h + m > 0 => Some(h as f64 / (h + m) as f64),
            _ => None,
        }
    }
}

/// One numeric field out of the STATS frame's flat JSON document
/// (schema in PROTOCOL.md §4), or `None` when absent.
fn stats_field(stats: &str, name: &str) -> Option<f64> {
    let pat = format!("\"{name}\":");
    let at = stats.find(&pat)? + pat.len();
    let rest = &stats[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// One unlabeled sample value from a Prometheus exposition, or `None`
/// when the series is absent (e.g. built without `--features
/// telemetry`, or no cache attached).
fn metric_value(metrics: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?.strip_prefix(' ')?;
        rest.trim().parse::<f64>().ok().map(|v| v as u64)
    })
}

/// The sum of every sample of `name` across its label sets (e.g. the
/// per-status `e2nvm_server_error_frames_total{status=...}` family),
/// or `None` when the series is absent entirely.
fn metric_sum(metrics: &str, name: &str) -> Option<u64> {
    let mut found = false;
    let mut total = 0f64;
    for line in metrics.lines() {
        let Some(rest) = line.strip_prefix(name) else {
            continue;
        };
        // Accept `name{labels} value` and `name value`; reject other
        // series that merely share the prefix.
        let value = if let Some(labeled) = rest.strip_prefix('{') {
            labeled
                .split_once('}')
                .and_then(|(_, v)| v.trim().parse::<f64>().ok())
        } else if let Some(v) = rest.strip_prefix(' ') {
            v.trim().parse::<f64>().ok()
        } else {
            None
        };
        if let Some(v) = value {
            found = true;
            total += v;
        }
    }
    found.then_some(total as u64)
}

/// Print the CI-checkable error-frame summary for one finished suite.
fn print_error_frames(metrics: &str) {
    match metric_sum(metrics, "e2nvm_server_error_frames_total") {
        Some(n) => println!("server error frames: {n}"),
        None => println!("server error frames: unavailable (build with --features telemetry)"),
    }
}

/// [`print_error_frames`] summed over several suites' final METRICS
/// expositions (the plain run drives two).
fn print_summed_error_frames(all_metrics: &[&str]) {
    let sums: Vec<u64> = all_metrics
        .iter()
        .filter_map(|m| metric_sum(m, "e2nvm_server_error_frames_total"))
        .collect();
    if sums.is_empty() {
        println!("server error frames: unavailable (build with --features telemetry)");
    } else {
        println!("server error frames: {}", sums.iter().sum::<u64>());
    }
}

/// Print the CI-checkable multi-chunk streaming-SCAN count: how many
/// SCAN_STREAM responses spanned more than one chunk frame, straight
/// from the server's telemetry. Non-zero proves workload E exercised
/// the chunked path, not just single-frame streams.
fn print_multi_chunk_scans(all_metrics: &[&str]) {
    let sums: Vec<u64> = all_metrics
        .iter()
        .filter_map(|m| metric_value(m, "e2nvm_server_scan_stream_multi_chunk_total"))
        .collect();
    if sums.is_empty() {
        println!("multi-chunk scan responses: unavailable (build with --features telemetry)");
    } else {
        println!("multi-chunk scan responses: {}", sums.iter().sum::<u64>());
    }
}

/// Everything one full suite run produced: per-workload throughput,
/// the final STATS document, and the final METRICS exposition.
struct SuiteOutcome {
    results: Vec<WorkloadResult>,
    stats: String,
    metrics: String,
}

/// Target payload per streamed SCAN chunk on the loadgen's
/// self-hosted servers: deliberately small so workload E's short
/// ranges (≤ 100 records) genuinely span multiple chunk frames —
/// the streaming path under test, not just its degenerate
/// one-chunk case.
const LOADGEN_SCAN_CHUNK: usize = 1024;

/// Boot a server (unless `--addr` points at one), load every record,
/// then drive each requested workload with `connections` pipelined
/// connections. `cache_cfg` shapes the server-side read-through cache
/// (`None` serves every GET from the store); `coalesce` turns on the
/// server's PUT-run coalescing, the knob whose bit-flip saving the
/// plain report measures.
fn run_suite(args: &Args, cache_cfg: Option<CacheConfig>, coalesce: bool) -> SuiteOutcome {
    let records = (args.segments / 4) as u64;
    let value_len = args.seg_bytes * 3 / 4;

    // Self-hosted server unless --addr points elsewhere. The in-process
    // option keeps the binary a one-command experiment; the traffic
    // still crosses real loopback sockets either way.
    let (addr, hosted): (SocketAddr, Option<ServerHandle>) = match &args.addr {
        Some(addr) => (addr.parse().expect("--addr must be HOST:PORT"), None),
        None => {
            eprintln!(
                "booting {}-shard {} server ({} segments x {} B{}) ...",
                args.shards,
                if args.threaded { "threaded" } else { "reactor" },
                args.segments,
                args.seg_bytes,
                match &cache_cfg {
                    Some(c) => format!(", {} MiB cache", c.capacity_bytes >> 20),
                    None => String::new(),
                }
            );
            let mut store = demo_store(args.shards, args.segments, args.seg_bytes, 0xE2);
            let registry = TelemetryRegistry::new();
            store.attach_telemetry(&registry);
            // Leave headroom above the driven connection count: the
            // loader + shutdown connections ride alongside the fleet,
            // and a BUSY reject mid-run would poison the measurement.
            let mut config = ServerConfig::builder()
                .max_connections(args.connections + 16)
                .workers(args.workers)
                .coalesce_puts(coalesce)
                .scan_chunk_bytes(LOADGEN_SCAN_CHUNK);
            if let Some(cache) = cache_cfg.clone() {
                config = config.cache(cache);
            }
            let config = config.build().expect("loadgen server config");
            let handle = if args.threaded {
                ThreadedServer::new(store, config)
                    .with_telemetry(&registry)
                    .start()
            } else {
                Server::new(store, config).with_telemetry(&registry).start()
            }
            .expect("server binds an ephemeral port");
            (handle.local_addr(), Some(handle))
        }
    };

    // Load phase: one connection inserts every record through the
    // pipelined put_many helper, then spot-checks a sample via
    // get_many.
    let mut loader = Client::connect(addr).expect("connect for load phase");
    let mut gen = make_workload('C', records, value_len, 0);
    let load_keys: Vec<u64> = gen.load_keys().collect();
    let t0 = Instant::now();
    for chunk in load_keys.chunks(args.pipeline) {
        let pairs: Vec<(u64, Vec<u8>)> = chunk
            .iter()
            .map(|&key| (key, gen.value_for(key, 0)))
            .collect();
        loader.put_many(&pairs).expect("load phase put_many");
    }
    let sample: Vec<u64> = load_keys.iter().step_by(64).copied().collect();
    for (key, value) in sample
        .iter()
        .zip(loader.get_many(&sample).expect("load phase get_many"))
    {
        assert_eq!(
            value.as_deref(),
            Some(gen.value_for(*key, 0).as_slice()),
            "loaded key {key} did not read back"
        );
    }
    eprintln!(
        "loaded {} records in {:.2}s",
        load_keys.len(),
        t0.elapsed().as_secs_f64()
    );

    // Run phase: per workload, one driver thread multiplexes all
    // `connections` sockets — each round it sends every connection's
    // next `pipeline`-deep batch, then drains every connection's
    // responses, so each connection keeps `pipeline` requests
    // outstanding without an OS thread per socket (on small hosts the
    // per-batch context switches would otherwise dominate the
    // measurement). Cache hit/miss counters are snapshotted between
    // workloads so each row reports its own delta.
    let mut results: Vec<WorkloadResult> = Vec::new();
    let snapshot = |loader: &mut Client| {
        let metrics = loader.metrics().expect("METRICS frame");
        (
            metric_value(&metrics, "e2nvm_cache_hits_total"),
            metric_value(&metrics, "e2nvm_cache_misses_total"),
        )
    };
    let device_snapshot = |loader: &mut Client| {
        let stats = loader.stats().expect("STATS frame");
        (
            stats_field(&stats, "bits_flipped").unwrap_or(0.0) as u64,
            stats_field(&stats, "energy_pj").unwrap_or(0.0),
        )
    };
    // The load phase doubled occupancy headroom exists for: records
    // fill 1/4 of the device, so admitting another `records` distinct
    // insert keys tops out at 1/2 — the placement pipeline keeps ample
    // free segments and D/E never hit a full-store error.
    let insert_budget = records as usize;
    let (mut prev_hits, mut prev_misses) = snapshot(&mut loader);
    let (mut prev_bits, mut prev_pj) = device_snapshot(&mut loader);
    for &workload in &args.workloads {
        // Traces are generated before the clock starts, so the timed
        // region measures the server, not the Zipfian sampler.
        let mut plans: Vec<ConnPlan> = (0..args.connections)
            .map(|c| {
                plan_connection(
                    workload,
                    records,
                    value_len,
                    0x10AD + c as u64,
                    args.ops,
                    args.pipeline,
                    insert_budget,
                )
            })
            .collect();
        let mut clients: Vec<Client> = (0..args.connections)
            .map(|_| Client::connect(addr).expect("run-phase connect"))
            .collect();
        let rounds = plans.iter().map(|p| p.batches.len()).max().unwrap_or(0);
        let t0 = Instant::now();
        // Each round: send every connection's batch, then drain every
        // connection's responses. On a small host this clusters the
        // context switches — one client→servers hand-off per round
        // instead of one per connection — and a connection's
        // outstanding requests never exceed `pipeline`.
        for round in 0..rounds {
            for (client, plan) in clients.iter_mut().zip(&plans) {
                if let Some((encoded, _)) = plan.batches.get(round) {
                    client.send_encoded(encoded).expect("run-phase send");
                }
            }
            for (client, plan) in clients.iter_mut().zip(plans.iter_mut()) {
                if let Some(&(_, owed)) = plan.batches.get(round) {
                    // Typed error frames (e.g. DEGRADED under a worn
                    // pool) are counted, not fatal — the run keeps
                    // going. The zero-copy consumer keeps the
                    // measurement off the client allocator. Draining
                    // counts *terminal* responses, so a streamed SCAN
                    // settles one owed slot however many chunk frames
                    // it spans.
                    let errors = &mut plan.result.errors;
                    client
                        .recv_responses(owed, |raw| {
                            if raw.code != Status::Ok as u8 && raw.code != Status::NotFound as u8 {
                                *errors += 1;
                            }
                        })
                        .expect("run-phase recv");
                }
            }
        }
        let elapsed_s = t0.elapsed().as_secs_f64();
        let mut total = WorkloadResult {
            name: workload,
            ops: 0,
            reads: 0,
            writes: 0,
            scans: 0,
            rmws: 0,
            degraded_inserts: 0,
            errors: 0,
            elapsed_s,
            bits_flipped: 0,
            energy_pj: 0.0,
            cache_hits: None,
            cache_misses: None,
        };
        for plan in &plans {
            total.ops += plan.result.ops;
            total.reads += plan.result.reads;
            total.writes += plan.result.writes;
            total.scans += plan.result.scans;
            total.rmws += plan.result.rmws;
            total.degraded_inserts += plan.result.degraded_inserts;
            total.errors += plan.result.errors;
        }
        drop(clients);
        let (hits, misses) = snapshot(&mut loader);
        total.cache_hits = hits.zip(prev_hits).map(|(now, prev)| now - prev);
        total.cache_misses = misses.zip(prev_misses).map(|(now, prev)| now - prev);
        (prev_hits, prev_misses) = (hits, misses);
        let (bits, pj) = device_snapshot(&mut loader);
        total.bits_flipped = bits.saturating_sub(prev_bits);
        total.energy_pj = pj - prev_pj;
        (prev_bits, prev_pj) = (bits, pj);
        eprintln!(
            "YCSB-{}: {} ops in {:.2}s = {:.0} ops/s \
             ({} reads, {} writes, {} scans, {} rmws, {} errors, \
             {:.1} bit flips/op{}{})",
            total.name,
            total.ops,
            total.elapsed_s,
            total.ops_per_s(),
            total.reads,
            total.writes,
            total.scans,
            total.rmws,
            total.errors,
            total.bits_per_op(),
            match total.degraded_inserts {
                0 => String::new(),
                n => format!(", {n} inserts degraded to updates"),
            },
            match total.hit_rate() {
                Some(rate) => format!(", {:.1}% cache hits", rate * 100.0),
                None => String::new(),
            }
        );
        results.push(total);
    }

    let stats = loader.stats().expect("STATS frame");
    let metrics = loader.metrics().expect("METRICS frame");
    drop(loader);

    if let Some(handle) = hosted {
        let mut c = Client::connect(addr).expect("connect for shutdown");
        c.shutdown_server().expect("SHUTDOWN frame acknowledged");
        let served = handle.join();
        eprintln!("clean shutdown after {served} connections");
    }

    SuiteOutcome {
        results,
        stats,
        metrics,
    }
}

/// Shared methodology note for both reports — keeps regenerated
/// result files honest about how the numbers were taken.
const METHODOLOGY: &str = "Methodology: operation traces are pre-generated and pre-encoded \
    before the clock starts (standard loadgen practice — the measurement covers serving, not \
    trace generation), and one driver thread multiplexes all connections round-by-round \
    (send every connection's batch, then drain every connection's responses), which minimises \
    context switches when client and server share cores. Numbers come from a single run on a \
    shared host where run-to-run variance of 30-40% is routine; compare the suites within one \
    run rather than across files, and weight the speedup column over absolute ops/s.\n\n";

fn mix_label(name: char) -> &'static str {
    match name {
        'A' => "50R/50U zipf",
        'B' => "95R/5U zipf",
        'D' => "95R/5I latest",
        'E' => "95S/5I zipf",
        'F' => "50R/50RMW zipf",
        _ => "100R zipf",
    }
}

fn write_report(path: &str, md: &str) {
    std::fs::create_dir_all("results").ok();
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(md.as_bytes()).unwrap();
    eprintln!("wrote {path}");
}

/// The plain (no `--cache`) report: the full YCSB A–F matrix with
/// per-workload device energy, from the twin suites the plain run
/// drives (`coalesce_puts` off, then on).
fn report_plain(args: &Args, baseline: &SuiteOutcome, coalesced: &SuiteOutcome) {
    let records = (args.segments / 4) as u64;
    let value_len = args.seg_bytes * 3 / 4;
    let mut md = String::from(
        "# Network serving: the YCSB A\u{2013}F matrix over loopback, with device energy\n\n",
    );
    md.push_str(&format!(
        "`e2nvm-loadgen` against a {}-shard `e2nvm-server` ({} segments x {} B, {} records, \
         {}-byte values): {} client connections x pipeline depth {}, {} ops per connection per \
         workload. Frames cross real loopback TCP sockets; the wire format is PROTOCOL.md. \
         Workload D admits new-key inserts against a capacity budget (past it, inserts degrade \
         to updates of already-admitted insert keys, so a finite simulated device never answers \
         a full-store error mid-run); E drives 1\u{2013}100-record ranges through the streaming \
         SCAN_STREAM opcode with a {} B chunk bound, so short scans genuinely span multiple \
         frames; F issues each read-modify-write as a pipelined GET\u{2192}PUT pair in one \
         batch. Bit flips and pJ per op are per-workload deltas of the server's STATS \
         counters — device work, not wall-clock energy.\n\n",
        args.shards,
        args.segments,
        args.seg_bytes,
        records,
        value_len,
        args.connections,
        args.pipeline,
        args.ops,
        LOADGEN_SCAN_CHUNK,
    ));
    md.push_str(METHODOLOGY);
    md.push_str("## Throughput and device energy (coalesce_puts off)\n\n");
    md.push_str(
        "| workload | mix | ops | elapsed s | ops/s | bit flips/op | pJ/op | error frames |\n",
    );
    md.push_str(
        "|---------:|----:|----:|----------:|------:|-------------:|------:|-------------:|\n",
    );
    for r in &baseline.results {
        md.push_str(&format!(
            "| YCSB-{} | {} | {} | {:.2} | {:.0} | {:.1} | {:.0} | {} |\n",
            r.name,
            mix_label(r.name),
            r.ops,
            r.elapsed_s,
            r.ops_per_s(),
            r.bits_per_op(),
            r.pj_per_op(),
            r.errors
        ));
    }
    md.push_str(
        "\n## PUT-run coalescing: bit-flip and energy effect per workload\n\n\
         The same matrix against a server with `coalesce_puts` on (consecutive pipelined \
         PUTs are batched into one `put_many`, giving the placement pipeline whole runs \
         to lay out). Write-heavy mixes are where the batch-aware placement can save \
         device work; read-only C is the no-op control.\n\n",
    );
    md.push_str(
        "| workload | mix | coalesced ops/s | bit flips/op off | bit flips/op on | \
         flips saved | pJ/op off | pJ/op on |\n",
    );
    md.push_str(
        "|---------:|----:|----------------:|-----------------:|----------------:|\
         ------------:|----------:|---------:|\n",
    );
    for (b, c) in baseline.results.iter().zip(&coalesced.results) {
        assert_eq!(b.name, c.name, "suites ran the same workloads in order");
        let saved = if b.bits_per_op() > 0.0 {
            format!(
                "{:+.1}%",
                (c.bits_per_op() - b.bits_per_op()) / b.bits_per_op() * 100.0
            )
        } else {
            "n/a".to_string()
        };
        md.push_str(&format!(
            "| YCSB-{} | {} | {:.0} | {:.1} | {:.1} | {} | {:.0} | {:.0} |\n",
            b.name,
            mix_label(b.name),
            c.ops_per_s(),
            b.bits_per_op(),
            c.bits_per_op(),
            saved,
            b.pj_per_op(),
            c.pj_per_op(),
        ));
    }
    let degraded: u64 = baseline
        .results
        .iter()
        .chain(&coalesced.results)
        .map(|r| r.degraded_inserts)
        .sum();
    if degraded > 0 {
        md.push_str(&format!(
            "\n{degraded} inserts (across both suites) exceeded the capacity budget and were \
             degraded to updates of already-admitted insert keys.\n"
        ));
    }
    md.push_str(&format!(
        "\nServer stats after the coalesce-off run: `{}`\n\nServer stats after the \
         coalesce-on run: `{}`\n",
        baseline.stats, coalesced.stats
    ));
    let path = if args.quick {
        "results/net_throughput_quick.md"
    } else {
        "results/net_throughput.md"
    };
    write_report(path, &md);
}

/// The `--cache` report: baseline and cached suites side by side, with
/// per-workload hit rates when the telemetry build exposes them.
fn report_cache(args: &Args, baseline: &SuiteOutcome, cached: &SuiteOutcome) {
    let records = (args.segments / 4) as u64;
    let value_len = args.seg_bytes * 3 / 4;
    let mut md = String::from(
        "# Hot-key caching: YCSB throughput with and without the DRAM read-through cache\n\n",
    );
    md.push_str(&format!(
        "`e2nvm-loadgen --cache` runs the suite twice against a {}-shard `e2nvm-server` \
         ({} segments x {} B, {} records, {}-byte values): once plain, once fronted by a \
         {} MiB read-through cache (PUT/DELETE invalidate before the ack; SCAN bypasses). \
         {} client connections x pipeline depth {}, {} ops per connection per workload. \
         Reads the cache absorbs never touch the simulated NVM device — on a read-heavy \
         mix that converts directly into throughput and saved device energy.\n\n",
        args.shards,
        args.segments,
        args.seg_bytes,
        records,
        value_len,
        args.cache_mb,
        args.connections,
        args.pipeline,
        args.ops,
    ));
    md.push_str(METHODOLOGY);
    md.push_str("| workload | mix | baseline ops/s | cached ops/s | speedup | cache hit rate |\n");
    md.push_str("|---------:|----:|---------------:|-------------:|--------:|---------------:|\n");
    for (b, c) in baseline.results.iter().zip(&cached.results) {
        assert_eq!(b.name, c.name, "suites ran the same workloads in order");
        let hit_rate = match c.hit_rate() {
            Some(rate) => format!("{:.1}%", rate * 100.0),
            None => "n/a".to_string(),
        };
        md.push_str(&format!(
            "| YCSB-{} | {} | {:.0} | {:.0} | {:.2}x | {} |\n",
            b.name,
            mix_label(b.name),
            b.ops_per_s(),
            c.ops_per_s(),
            c.ops_per_s() / b.ops_per_s(),
            hit_rate,
        ));
    }
    md.push_str(&format!(
        "\nBaseline server stats after the run: `{}`\n\nCached server stats after the run: `{}`\n",
        baseline.stats, cached.stats
    ));
    let path = if args.quick {
        "results/cache_throughput_quick.md"
    } else {
        "results/cache_throughput.md"
    };
    write_report(path, &md);
}

/// The `--compare-servers` report: both serving engines across the
/// connection-count grid, one table row per (connections, workload).
fn report_compare(args: &Args, rows: &[(usize, SuiteOutcome, SuiteOutcome)]) {
    let records = (args.segments / 4) as u64;
    let value_len = args.seg_bytes * 3 / 4;
    let workers = match args.workers {
        0 => "auto".to_string(),
        n => n.to_string(),
    };
    let mut md = String::from(
        "# Serving engines: epoll reactor vs thread-per-connection under connection fan-in\n\n",
    );
    md.push_str(&format!(
        "`e2nvm-loadgen --compare-servers` drives the same pipelined YCSB suite against both \
         serving engines of a {}-shard `e2nvm-server` ({} segments x {} B, {} records, {}-byte \
         values; reactor workers: {}): the thread-per-connection baseline (one OS thread per \
         socket) and the epoll reactor (one event loop + a fixed worker pool). Pipeline depth \
         {}, {} ops per workload. The wire protocol and responses are \
         byte-identical between engines (PROTOCOL.md); only the serving model differs. The \
         interesting column is the large-connection-count row: per-thread stacks and context \
         switches are what the reactor removes. At low fan-in the reactor runs batches inline \
         on its event-loop thread (DESIGN.md \u{a7}13, dual-regime dispatch), so the small-count \
         rows measure parity, not pool-handoff overhead.\n\n",
        args.shards,
        args.segments,
        args.seg_bytes,
        records,
        value_len,
        workers,
        args.pipeline,
        if args.ops_set {
            format!("{} per connection", args.ops)
        } else {
            let total = if args.quick { 8_000 } else { 100_000 };
            format!(
                "the same total per suite at every connection count (>= {total}, \
                 floored at {} per connection)",
                args.ops
            )
        },
    ));
    md.push_str(METHODOLOGY);
    md.push_str(
        "| connections | workload | mix | threaded ops/s | reactor ops/s | reactor/threaded |\n",
    );
    md.push_str(
        "|------------:|---------:|----:|---------------:|--------------:|-----------------:|\n",
    );
    for (conns, threaded, reactor) in rows {
        for (t, r) in threaded.results.iter().zip(&reactor.results) {
            assert_eq!(t.name, r.name, "suites ran the same workloads in order");
            md.push_str(&format!(
                "| {} | YCSB-{} | {} | {:.0} | {:.0} | {:.2}x |\n",
                conns,
                t.name,
                mix_label(t.name),
                t.ops_per_s(),
                r.ops_per_s(),
                r.ops_per_s() / t.ops_per_s(),
            ));
        }
    }
    md.push('\n');
    let path = if args.quick {
        "results/reactor_throughput_quick.md"
    } else {
        "results/reactor_throughput.md"
    };
    write_report(path, &md);
}

// ---------------------------------------------------------------------
// Kill-and-restart recovery experiment (`--recovery`).
// ---------------------------------------------------------------------

/// The sibling `e2nvm-server` binary built alongside this loadgen.
fn server_exe() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current exe");
    let path = exe
        .parent()
        .expect("exe dir")
        .join(format!("e2nvm-server{}", std::env::consts::EXE_SUFFIX));
    assert!(
        path.exists(),
        "e2nvm-server binary not found at {} — build it first \
         (cargo build -p e2nvm-server)",
        path.display()
    );
    path
}

/// A spawned out-of-process server: the child, its bound address, the
/// boot time in seconds (spawn → `listening on` banner), and the kept
/// stdout reader — dropping the pipe early would hand the server a
/// SIGPIPE/EPIPE on its own shutdown prints.
struct SpawnedServer {
    child: std::process::Child,
    addr: SocketAddr,
    boot_s: f64,
    _stdout: std::io::BufReader<std::process::ChildStdout>,
}

/// Spawn an out-of-process server with `--data-dir` and wait for its
/// `listening on ADDR` banner. The boot time is the
/// train-from-scratch time on an empty directory and the
/// snapshot+WAL-replay time on a populated one.
fn spawn_server(args: &Args, data_dir: &std::path::Path) -> SpawnedServer {
    let mut cmd = std::process::Command::new(server_exe());
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--shards")
        .arg(args.shards.to_string())
        .arg("--segments")
        .arg(args.segments.to_string())
        .arg("--seg-bytes")
        .arg(args.seg_bytes.to_string())
        .arg("--data-dir")
        .arg(data_dir)
        // Periodic snapshots bound the WAL tail a crash leaves behind
        // (and therefore the replay a restart pays) to ~1/6 of the
        // burst — the production knob this experiment exists to size.
        .arg("--snapshot-every")
        .arg(((args.ops / 6).max(1)).to_string());
    spawn_banner(cmd)
}

/// Spawn a memory-only cluster node with explicit store geometry and,
/// for the wear-out experiment, the simulator's fault injector
/// (`--fault-endurance`/`--fault-seed`).
fn spawn_cluster_node(
    shards: usize,
    segments: usize,
    seg_bytes: usize,
    fault: Option<(u64, u64)>,
) -> SpawnedServer {
    let mut cmd = std::process::Command::new(server_exe());
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--segments")
        .arg(segments.to_string())
        .arg("--seg-bytes")
        .arg(seg_bytes.to_string());
    if let Some((endurance_bits, seed)) = fault {
        cmd.arg("--fault-endurance")
            .arg(endurance_bits.to_string())
            .arg("--fault-seed")
            .arg(seed.to_string());
    }
    spawn_banner(cmd)
}

/// Launch a prepared server command and block until its
/// `listening on ADDR` banner, timing spawn-to-banner as the boot.
fn spawn_banner(mut cmd: std::process::Command) -> SpawnedServer {
    use std::io::BufRead as _;
    cmd.stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    let t0 = Instant::now();
    let mut child = cmd.spawn().expect("spawn e2nvm-server");
    let mut stdout = std::io::BufReader::new(child.stdout.take().expect("child stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read server banner");
    let boot_s = t0.elapsed().as_secs_f64();
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected server banner {banner:?}"))
        .parse()
        .expect("server address");
    SpawnedServer {
        child,
        addr,
        boot_s,
        _stdout: stdout,
    }
}

/// Deterministic value for burst op `i` — reproducible across the
/// kill so the verifier knows exactly what each acked key must hold.
fn burst_value(i: usize, len: usize) -> Vec<u8> {
    let seed = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    seed.to_le_bytes()
        .iter()
        .copied()
        .cycle()
        .take(len)
        .collect()
}

/// Sustained pipelined PUT throughput against an in-process server,
/// with or without persistence — the WAL-overhead twin the report's
/// within-10% claim rests on. Same keyspace, values, and pipeline
/// depth as the kill burst. The burst is driven `rounds` times against
/// one server and the best round is returned: the first round pays
/// one-time costs (first-touch placements, allocator growth) and a
/// shared host adds 30-40% run-to-run noise, so the max is the
/// honest estimate of each configuration's ceiling.
/// One in-process server plus a connected client driving pre-encoded
/// pipelined PUT batches — half of the WAL overhead twin. Both twins
/// stay alive together and their timing rounds interleave, so machine
/// drift (CPU frequency, page cache, scheduler state) hits both
/// equally instead of biasing whichever twin ran second.
struct BurstRig {
    client: Client,
    handle: Option<ServerHandle>,
    batches: Vec<(Vec<u8>, usize)>,
    ops: usize,
}

impl BurstRig {
    fn new(args: &Args, persist: Option<e2nvm_persist::PersistenceConfig>) -> Self {
        let mut store = demo_store(args.shards, args.segments, args.seg_bytes, 0xE2);
        if let Some(pcfg) = persist {
            store = store
                .with_persistence(pcfg, None)
                .expect("enable persistence");
        }
        // Both twins coalesce pipelined PUTs into put_many — the
        // batch-shaped serving configuration group commit is built
        // around (one WAL lock + one append run per shard per batch).
        // Identical on both sides, so the delta isolates the WAL.
        let config = ServerConfig::builder()
            .max_connections(16)
            .coalesce_puts(true)
            .build()
            .expect("config");
        let handle = Server::new(store, config).start().expect("bind");
        let client = Client::connect(handle.local_addr()).expect("connect");
        let keyspace = (args.segments / 4) as u64;
        let value_len = args.seg_bytes * 3 / 4;
        // Pre-encode every batch so the timed region measures serving.
        let batches: Vec<(Vec<u8>, usize)> = (0..args.ops)
            .collect::<Vec<_>>()
            .chunks(args.pipeline)
            .map(|chunk| {
                let mut encoded = Vec::with_capacity(chunk.len() * (value_len + 24));
                for &i in chunk {
                    encode_request(
                        &Request::Put {
                            key: i as u64 % keyspace,
                            value: burst_value(i, value_len),
                        },
                        &mut encoded,
                    );
                }
                (encoded, chunk.len())
            })
            .collect();
        Self {
            client,
            handle: Some(handle),
            batches,
            ops: args.ops,
        }
    }

    /// Drive every batch once; returns this round's ops/s.
    fn run_once(&mut self) -> f64 {
        let t0 = Instant::now();
        for (encoded, owed) in &self.batches {
            self.client.send_encoded(encoded).expect("send");
            self.client.recv_frames(*owed, |_| {}).expect("recv");
        }
        self.ops as f64 / t0.elapsed().as_secs_f64()
    }

    fn shutdown(mut self) {
        self.client.shutdown_server().expect("shutdown");
        if let Some(handle) = self.handle.take() {
            handle.join();
        }
    }
}

/// Best-of-`rounds` PUT throughput for the WAL-off and WAL-on twins,
/// with the rounds interleaved (off, on, off, on, ...).
fn wal_twin_ops_per_s(
    args: &Args,
    persist: e2nvm_persist::PersistenceConfig,
    rounds: usize,
) -> (f64, f64) {
    let mut off = BurstRig::new(args, None);
    let mut on = BurstRig::new(args, Some(persist));
    let (mut best_off, mut best_on) = (0f64, 0f64);
    for _ in 0..rounds {
        best_off = best_off.max(off.run_once());
        best_on = best_on.max(on.run_once());
    }
    off.shutdown();
    on.shutdown();
    (best_off, best_on)
}

/// The `--recovery` experiment: fresh boot → acked PUT burst →
/// SIGKILL mid-burst → restart from the data dir → verify every acked
/// write → measure boot-time speedup and WAL throughput overhead →
/// write `results/recovery.md`.
fn run_recovery(args: &Args) {
    let data_dir = std::env::temp_dir().join(format!("e2nvm-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let keyspace = (args.segments / 4) as u64;
    let value_len = args.seg_bytes * 3 / 4;

    // Phase 1: fresh boot on an empty directory — the server trains
    // its placement models from scratch and seeds the snapshot. This
    // boot time is what every restart would cost without persistence.
    eprintln!("== phase 1: fresh boot (train from scratch) ==");
    let mut server = spawn_server(args, &data_dir);
    let (addr, fresh_boot_s) = (server.addr, server.boot_s);
    eprintln!("fresh boot (retrain): {:.0} ms", fresh_boot_s * 1e3);

    // Phase 2: acked PUT burst, SIGKILL with the last batch in
    // flight. A write counts as acked only when its OK response was
    // read off the socket — exactly the client's durability contract.
    let mut client = Client::connect(addr).expect("connect for burst");
    let plan: Vec<(u64, Vec<u8>)> = (0..args.ops)
        .map(|i| (i as u64 % keyspace, burst_value(i, value_len)))
        .collect();
    let batches: Vec<&[(u64, Vec<u8>)]> = plan.chunks(args.pipeline).collect();
    let kill_at = batches.len().saturating_sub(1);
    let mut shadow: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
    let mut acked_ops = 0usize;
    for (bi, batch) in batches.iter().enumerate() {
        let mut encoded = Vec::with_capacity(batch.len() * (value_len + 24));
        for (key, value) in batch.iter() {
            encode_request(
                &Request::Put {
                    key: *key,
                    value: value.clone(),
                },
                &mut encoded,
            );
        }
        if client.send_encoded(&encoded).is_err() {
            break; // server already gone
        }
        if bi == kill_at {
            // The batch is on the wire and unacknowledged: the server
            // dies with writes in flight.
            server.child.kill().expect("SIGKILL server");
        }
        let mut oks: Vec<bool> = Vec::with_capacity(batch.len());
        let res = client.recv_frames(batch.len(), |raw| oks.push(raw.code == Status::Ok as u8));
        for ((key, value), ok) in batch.iter().zip(&oks) {
            if *ok {
                shadow.insert(*key, value.clone());
                acked_ops += 1;
            }
        }
        if res.is_err() {
            break; // connection died mid-drain; only drained acks count
        }
    }
    drop(client);
    server.child.wait().expect("reap killed server");
    drop(server);
    eprintln!(
        "burst: {} puts sent, {} acked before SIGKILL ({} distinct keys)",
        args.ops,
        acked_ops,
        shadow.len()
    );
    assert!(
        acked_ops > 0,
        "no writes acked before the kill — burst too small"
    );

    // Phase 3: restart from the same directory and verify every acked
    // write. Boot must recover (snapshot + WAL replay), not retrain.
    eprintln!("== phase 2: restart from {} ==", data_dir.display());
    let mut server = spawn_server(args, &data_dir);
    let (addr, recovery_boot_s) = (server.addr, server.boot_s);
    eprintln!("recovery boot: {:.0} ms", recovery_boot_s * 1e3);
    let mut verify = Client::connect(addr).expect("connect for verify");
    let keys: Vec<u64> = shadow.keys().copied().collect();
    let mut lost = 0usize;
    for chunk in keys.chunks(256) {
        let got = verify.get_many(chunk).expect("verify get_many");
        for (key, value) in chunk.iter().zip(got) {
            if value.as_deref() != Some(shadow[key].as_slice()) {
                eprintln!("LOST acked key {key}");
                lost += 1;
            }
        }
    }
    println!(
        "acked writes recovered: {}/{} (lost {})",
        keys.len() - lost,
        keys.len(),
        lost
    );
    verify.shutdown_server().expect("shutdown recovered server");
    drop(verify);
    server.child.wait().expect("recovered server exits");
    drop(server);
    let speedup = fresh_boot_s / recovery_boot_s;
    println!("recovery speedup: {speedup:.1}x (retrain {fresh_boot_s:.3}s vs recover {recovery_boot_s:.3}s)");

    // Phase 4: WAL overhead twin — identical PUT bursts against
    // in-process servers with and without persistence at the default
    // flush policy.
    eprintln!("== phase 3: WAL-off vs WAL-on PUT throughput ==");
    let rounds = if args.quick { 2 } else { 8 };
    let wal_dir = std::env::temp_dir().join(format!("e2nvm-recovery-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    // Default flush policy on purpose: the acceptance number is the
    // out-of-the-box overhead, not a tuned one.
    let pcfg = e2nvm_persist::PersistenceConfig::builder()
        .data_dir(&wal_dir)
        .build()
        .expect("persistence config");
    let (wal_off, wal_on) = wal_twin_ops_per_s(args, pcfg, rounds);
    let delta_pct = (wal_off - wal_on) / wal_off * 100.0;
    println!(
        "wal throughput: {wal_off:.0} ops/s off, {wal_on:.0} ops/s on ({delta_pct:+.1}% overhead)"
    );
    let _ = std::fs::remove_dir_all(&wal_dir);

    // The report.
    let mut md = String::from("# Crash recovery: kill-and-restart with WAL + snapshots\n\n");
    md.push_str(&format!(
        "`e2nvm-loadgen --recovery` against an out-of-process {}-shard `e2nvm-server` \
         ({} segments x {} B, {}-byte values, pipeline depth {}, default flush policy): \
         boot with `--data-dir`, drive {} acked PUTs, SIGKILL the server with the final \
         batch in flight, restart from the same directory, and read back every acked \
         write. A write counts as acked only when its OK response was read off the \
         socket; the server appends to the per-shard WAL (one `write(2)` per batch, \
         before the ack) so a killed process can never lose an acked write under any \
         flush policy.\n\n",
        args.shards, args.segments, args.seg_bytes, value_len, args.pipeline, args.ops,
    ));
    md.push_str(METHODOLOGY);
    md.push_str("| metric | value |\n|---|---:|\n");
    md.push_str(&format!(
        "| puts acked before SIGKILL | {acked_ops} ({} distinct keys) |\n",
        keys.len()
    ));
    md.push_str(&format!(
        "| acked writes recovered | {}/{} (lost {lost}) |\n",
        keys.len() - lost,
        keys.len()
    ));
    md.push_str(&format!(
        "| retrain-from-scratch boot | {:.0} ms |\n",
        fresh_boot_s * 1e3
    ));
    md.push_str(&format!(
        "| snapshot+WAL recovery boot | {:.0} ms |\n",
        recovery_boot_s * 1e3
    ));
    md.push_str(&format!("| recovery speedup | {speedup:.1}x |\n"));
    md.push_str(&format!(
        "| PUT throughput, WAL off | {wal_off:.0} ops/s |\n"
    ));
    md.push_str(&format!("| PUT throughput, WAL on | {wal_on:.0} ops/s |\n"));
    md.push_str(&format!("| WAL overhead | {delta_pct:+.1}% |\n"));
    md.push_str(
        "\nBoot times are spawn-to-`listening` of the real binary, so both include \
         process startup; the speedup is therefore a *lower* bound on the \
         model-retraining saving. The WAL rows drive identical pre-encoded PUT bursts \
         against a pair of in-process servers differing only in persistence, with the \
         twins' timing rounds interleaved (off, on, off, on, ...) and each side \
         reporting its best round, so host-load drift hits both columns alike. The \
         WAL-on twin runs the default flush policy: appends buffer in memory, one \
         `write(2)` per shard hands the batch to the kernel before its acks reach \
         the socket, and the periodic `fdatasync` runs on a background syncer thread.\n",
    );
    let path = if args.quick {
        "results/recovery_quick.md"
    } else {
        "results/recovery.md"
    };
    write_report(path, &md);

    let _ = std::fs::remove_dir_all(&data_dir);
    assert_eq!(lost, 0, "recovery lost {lost} acked writes");
}

/// The `--cluster` experiments: three out-of-process servers behind
/// an `e2nvm-cluster` router, R=2 replication. Experiment 1 SIGKILLs
/// a node mid-burst; experiment 2 wears a node's simulated device out
/// until the health prober drains it. Both verify every acked write
/// reads back (the CI-checkable `(lost 0)` lines) and snapshot the
/// routing table before and after the event; everything lands in
/// `results/cluster_failover.md`.
fn run_cluster(args: &Args) {
    const REPLICATION: usize = 2;
    let value_len = args.seg_bytes * 3 / 4;
    let keyspace = (args.segments / 4) as u64;

    // ------ Experiment 1: SIGKILL a node mid-burst ------
    eprintln!("== cluster experiment 1: SIGKILL a node mid-burst ==");
    let mut servers: Vec<SpawnedServer> = (0..3)
        .map(|_| spawn_cluster_node(args.shards, args.segments, args.seg_bytes, None))
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr.to_string()).collect();
    let cfg = ClusterConfig::builder()
        .addrs(addrs.iter().cloned())
        .replication(REPLICATION)
        .probe_interval(Duration::from_millis(100))
        .build()
        .expect("cluster config");
    let mut cluster = ClusterClient::connect(cfg);

    let mut shadow: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
    let kill_at = (args.ops / 2).max(1);
    let victim = 1usize;
    let mut kill_before = String::new();
    for i in 0..args.ops {
        if i == kill_at {
            // Give the prober one pass so the "before" table carries
            // live key/wear counts, then hard-kill the victim with
            // the burst still running.
            std::thread::sleep(Duration::from_millis(250));
            kill_before = cluster.routing_table();
            servers[victim].child.kill().expect("SIGKILL cluster node");
            servers[victim].child.wait().expect("reap killed node");
            eprintln!(
                "SIGKILLed node {victim} ({}) after {i} acked puts",
                addrs[victim]
            );
        }
        let key = i as u64 % keyspace;
        let value = burst_value(i, value_len);
        // Full-set acks: a put returns Ok only when every replica
        // acknowledged. A single node kill must never fail a write —
        // the router re-walks the ring onto the survivors.
        cluster
            .put(key, &value)
            .expect("replicated put survives a single node kill");
        shadow.insert(key, value);
    }
    let mut lost = 0usize;
    for (key, value) in &shadow {
        if cluster.get(*key).expect("verify get").as_deref() != Some(value.as_slice()) {
            eprintln!("LOST acked key {key}");
            lost += 1;
        }
    }
    assert_eq!(
        cluster.view().state(victim),
        NodeState::Down,
        "router never marked the killed node down"
    );
    let kill_after = cluster.routing_table();
    let kill_stats = cluster.cluster_stats().snapshot();
    println!(
        "acked writes recovered: {}/{} (lost {lost})",
        shadow.len() - lost,
        shadow.len()
    );
    cluster.shutdown_all();
    drop(cluster);
    for (i, mut s) in servers.into_iter().enumerate() {
        if i != victim {
            s.child.wait().expect("cluster node exits");
        }
    }

    // ------ Experiment 2: wear a node out, drain before it dies ------
    eprintln!("== cluster experiment 2: wear-driven drain ==");
    // Node 0 runs on a simulated device with a tiny endurance budget;
    // nodes 1 and 2 are effectively immortal. Geometry is fixed
    // (independent of --segments) so the wear-fraction math —
    // retired/total crossing the 2% drain threshold — is reproducible
    // regardless of CLI sizing.
    let wear_victim = 0usize;
    let servers: Vec<SpawnedServer> = (0..3usize)
        .map(|i| {
            if i == wear_victim {
                spawn_cluster_node(2, 128, 64, Some((6_000, 0xFA57)))
            } else {
                spawn_cluster_node(2, 256, 64, None)
            }
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr.to_string()).collect();
    let cfg = ClusterConfig::builder()
        .addrs(addrs.iter().cloned())
        .replication(REPLICATION)
        .probe_interval(Duration::from_millis(100))
        .wear_drain_threshold(0.02)
        .build()
        .expect("cluster config");
    let mut shadow2: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();

    // Seed under-replicated keys: a router that believes both peers
    // are down writes through node 0 alone (the ring walk yields the
    // one reachable node, and full-set acks degrade to that set).
    // These are exactly the keys the drain exists for — they survive
    // node 0's death only if the drain re-homes them to the replicas.
    let mut degraded = ClusterClient::connect(
        ClusterConfig::builder()
            .addrs(addrs.iter().cloned())
            .replication(REPLICATION)
            .probing(false)
            .build()
            .expect("degraded router config"),
    );
    degraded.view().mark_down(1);
    degraded.view().mark_down(2);
    for key in 200..216u64 {
        let value = format!("only-on-node0-{key}").into_bytes();
        degraded
            .put(key, &value)
            .expect("degraded-topology put to the lone reachable node");
        shadow2.insert(key, value);
    }
    drop(degraded);

    let mut cluster = ClusterClient::connect(cfg);
    std::thread::sleep(Duration::from_millis(250));
    let wear_before = cluster.routing_table();

    // Dense overwrites burn node 0's endurance; keep writing until
    // the prober flips it to draining (or give up and fail).
    let mut drained_round = None;
    'wear: for round in 0..600u64 {
        for i in 0..8u64 {
            let key = (round * 8 + i) % 64;
            let value: Vec<u8> = (0..48)
                .map(|j| ((key ^ round).wrapping_mul(0x9E37) as u8).wrapping_add(j))
                .collect();
            cluster.put(key, &value).expect("replicated put under wear");
            shadow2.insert(key, value);
        }
        if cluster.view().state(wear_victim) == NodeState::Draining {
            drained_round = Some(round);
            break 'wear;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let drained_round = drained_round.expect(
        "the prober never flipped the wearing node to draining — endurance budget too large?",
    );
    // The dying device's wear counters at the moment of the drain
    // decision, straight from its HEALTH frame.
    let wear_at_drain = Client::connect(&addrs[wear_victim])
        .and_then(|mut c| c.health())
        .expect("probe the worn node directly");
    eprintln!(
        "node {wear_victim} hit the drain threshold in round {drained_round}: \
         {}/{} segments retired",
        wear_at_drain.retired_segments, wear_at_drain.total_segments
    );
    let rehomed = cluster.run_pending_drains().expect("drain re-homes keys");
    eprintln!("drain re-homed {rehomed} keys off node {wear_victim}");

    // Post-drain: new writes route around the draining node, and the
    // whole shadow — pre-drain and post-drain keys — must verify.
    for key in 100..140u64 {
        let value = format!("post-drain-{key}").into_bytes();
        cluster.put(key, &value).expect("put post-drain");
        shadow2.insert(key, value);
    }
    let mut lost2 = 0usize;
    for (key, value) in &shadow2 {
        if cluster.get(*key).expect("verify get").as_deref() != Some(value.as_slice()) {
            eprintln!("LOST acked key {key} across the wear drain");
            lost2 += 1;
        }
    }
    let wear_after = cluster.routing_table();
    let wear_stats = cluster.cluster_stats().snapshot();
    println!(
        "acked writes recovered after wear drain: {}/{} (lost {lost2})",
        shadow2.len() - lost2,
        shadow2.len()
    );
    cluster.shutdown_all();
    drop(cluster);
    for mut s in servers {
        s.child.wait().expect("cluster node exits");
    }

    // The report.
    let mut md = String::from("# Cluster failover: kill-a-server and wear-out-a-server\n\n");
    md.push_str(&format!(
        "`e2nvm-loadgen --cluster` boots three out-of-process `e2nvm-server`s and routes \
         over them with `e2nvm-cluster` (consistent-hash ring, R={REPLICATION} \
         replication, health probes every 100 ms). A write counts as acked only when \
         every node in its replica set acknowledged it, so the acceptance bar is \
         absolute: after either failure, **every** acked write must read back through \
         the survivors.\n\n"
    ));
    md.push_str(
        "Methodology: puts are synchronous R-way fan-outs through one router; values \
         are deterministic functions of the op index, so the verifier knows exactly \
         what every acked key must hold. Routing tables snapshot the router's live \
         view — `state` is what the router routes by; `keys` and `retired/total` come \
         from each server's HEALTH frame, so a just-killed node shows its last \
         successful probe.\n\n",
    );

    md.push_str("## Experiment 1 — SIGKILL a node mid-burst\n\n");
    md.push_str(&format!(
        "{} acked puts over a {keyspace}-key keyspace ({value_len}-byte values); node \
         {victim} is SIGKILLed after {kill_at} puts with the burst still running. The \
         router sees the dead socket, marks the node down, re-walks the ring, and \
         retries — no put fails, and every key stays replicated among the \
         survivors.\n\nRouting before the kill:\n\n",
        args.ops
    ));
    md.push_str(&kill_before);
    md.push_str("\nRouting after the kill and verification:\n\n");
    md.push_str(&kill_after);
    md.push_str(&format!(
        "\n| metric | value |\n|---|---:|\n\
         | puts acked | {} ({} distinct keys) |\n\
         | acked writes recovered | {}/{} (lost {lost}) |\n\
         | nodes marked down | {} |\n\
         | replica write failovers | {} |\n\n",
        args.ops,
        shadow.len(),
        shadow.len() - lost,
        shadow.len(),
        kill_stats.nodes_marked_down,
        kill_stats.replica_write_failures,
    ));

    md.push_str("## Experiment 2 — wear-driven drain before device death\n\n");
    md.push_str(&format!(
        "Node {wear_victim} runs on a simulated device with a deterministic ~6000-bit \
         endurance budget (128 x 64 B segments); its peers are effectively immortal. \
         Before the wear burst, 16 deliberately under-replicated keys are written \
         through a degraded-topology router that could only reach node {wear_victim} — \
         the keys whose survival genuinely depends on the dying device. Dense \
         overwrites then retire its segments until the health prober sees the wear \
         fraction cross the 2% drain threshold and flips the node to `draining`: writes \
         stop routing to it immediately, reads continue, and the drain pass re-homes \
         exactly those dependent keys to the replicas (fully-replicated keys are \
         skipped — a healthy copy is always at least as new) — all *before* the device \
         fails.\n\nRouting before the drain:\n\n"
    ));
    md.push_str(&wear_before);
    md.push_str("\nRouting after the drain and verification:\n\n");
    md.push_str(&wear_after);
    md.push_str(&format!(
        "\n| metric | value |\n|---|---:|\n\
         | rounds until the drain triggered | {drained_round} |\n\
         | worn node at drain time | {}/{} segments retired |\n\
         | under-replicated keys seeded | 16 |\n\
         | keys re-homed by the drain | {rehomed} |\n\
         | read repairs | {} |\n\
         | acked writes recovered | {}/{} (lost {lost2}) |\n\n",
        wear_at_drain.retired_segments,
        wear_at_drain.total_segments,
        wear_stats.read_repairs,
        shadow2.len() - lost2,
        shadow2.len(),
    ));
    md.push_str(
        "Both experiments hold the same invariant the single-server recovery \
         experiment holds for crashes: an acked write is never lost. Here the \
         mechanism is replication and routing rather than a WAL — the kill case \
         proves reactive failover (promotion on transport failure), the wear case \
         proves *proactive* failover (the paper's endurance failure mode, caught by \
         telemetry and drained before the device dies).\n",
    );
    let path = if args.quick {
        "results/cluster_failover_quick.md"
    } else {
        "results/cluster_failover.md"
    };
    write_report(path, &md);

    assert_eq!(lost, 0, "kill experiment lost {lost} acked writes");
    assert_eq!(lost2, 0, "wear experiment lost {lost2} acked writes");
}

fn main() {
    let args = parse_args();

    if args.cluster {
        assert!(
            args.addr.is_none() && !args.cache && !args.compare && !args.threaded && !args.recovery,
            "--cluster boots its own servers; drop \
             --addr/--cache/--compare-servers/--threaded/--recovery"
        );
        run_cluster(&args);
        return;
    }

    if args.recovery {
        assert!(
            args.addr.is_none() && !args.cache && !args.compare && !args.threaded,
            "--recovery boots its own servers; drop --addr/--cache/--compare-servers/--threaded"
        );
        run_recovery(&args);
        return;
    }

    if args.compare {
        assert!(
            args.addr.is_none(),
            "--compare-servers boots its own servers; drop --addr"
        );
        assert!(
            !args.cache,
            "--compare-servers measures serving engines; drop --cache"
        );
        // Small count = per-connection parity check; large count = the
        // fan-in case the reactor exists for. An explicit --connections
        // pins the grid to that single point.
        let grid: Vec<usize> = if args.connections_set {
            vec![args.connections]
        } else if args.quick {
            vec![4, 64]
        } else {
            vec![4, 512]
        };
        let mut rows: Vec<(usize, SuiteOutcome, SuiteOutcome)> = Vec::new();
        let mut error_frames = 0u64;
        for &conns in &grid {
            let mut sub = args.clone();
            sub.connections = conns;
            if !args.ops_set {
                // Equalize measurement duration across grid points: at
                // a flat per-connection count the small-fan-in suites
                // finish in milliseconds and measure scheduler noise,
                // not the engine. Target the same total ops per suite
                // at every count (floored at the per-connection
                // default).
                let total = if args.quick { 8_000 } else { 100_000 };
                sub.ops = (total / conns).max(args.ops);
            }
            eprintln!("== threaded engine, {conns} connections ==");
            sub.threaded = true;
            let threaded = run_suite(&sub, None, false);
            eprintln!("== reactor engine, {conns} connections ==");
            sub.threaded = false;
            let reactor = run_suite(&sub, None, false);
            for out in [&threaded, &reactor] {
                error_frames +=
                    metric_sum(&out.metrics, "e2nvm_server_error_frames_total").unwrap_or(0);
            }
            rows.push((conns, threaded, reactor));
        }
        report_compare(&args, &rows);
        let total_ops: u64 = rows
            .iter()
            .flat_map(|(_, t, r)| t.results.iter().chain(&r.results))
            .map(|r| r.ops)
            .sum();
        println!("completed {total_ops} ops");
        println!("server error frames: {error_frames}");
        assert!(total_ops > 0, "load generator completed zero operations");
        return;
    }

    if !args.cache {
        // Twin suites: the same matrix with PUT-run coalescing off and
        // on — the off suite is the headline table, the pair is the
        // coalescing bit-flip measurement.
        eprintln!("== suite 1/2: coalesce_puts off ==");
        let baseline = run_suite(&args, None, false);
        eprintln!("== suite 2/2: coalesce_puts on ==");
        let coalesced = run_suite(&args, None, true);
        report_plain(&args, &baseline, &coalesced);
        let total_ops: u64 = (baseline.results.iter().chain(&coalesced.results))
            .map(|r| r.ops)
            .sum();
        println!("completed {total_ops} ops");
        print_summed_error_frames(&[&baseline.metrics, &coalesced.metrics]);
        print_multi_chunk_scans(&[&baseline.metrics, &coalesced.metrics]);
        assert!(total_ops > 0, "load generator completed zero operations");
        return;
    }

    assert!(
        args.addr.is_none(),
        "--cache boots its own baseline and cached servers; drop --addr"
    );
    eprintln!("== baseline suite (no cache) ==");
    let baseline = run_suite(&args, None, false);
    eprintln!("== cached suite ({} MiB) ==", args.cache_mb);
    let cache_cfg = CacheConfig::builder()
        .capacity_bytes(args.cache_mb << 20)
        .build()
        .expect("loadgen cache config");
    let cached = run_suite(&args, Some(cache_cfg), false);

    // Accounting cross-check, when the build exposes the cache series:
    // every run-phase GET was either a hit or a miss — the cache never
    // double-counts and never loses a lookup. Per-workload deltas
    // exclude the load phase's own spot-check GETs.
    if cached.metrics.contains("e2nvm_cache_hits_total") {
        let hits: u64 = cached.results.iter().filter_map(|r| r.cache_hits).sum();
        let misses: u64 = cached.results.iter().filter_map(|r| r.cache_misses).sum();
        let reads: u64 = cached.results.iter().map(|r| r.reads).sum();
        assert!(hits > 0, "cached suite never hit the cache");
        assert_eq!(
            hits + misses,
            reads,
            "cache lookups ({hits} hits + {misses} misses) != GETs served ({reads})"
        );
        eprintln!("cache accounting: {hits} hits + {misses} misses == {reads} reads served");
    }

    report_cache(&args, &baseline, &cached);
    let total_ops: u64 = (baseline.results.iter().chain(&cached.results))
        .map(|r| r.ops)
        .sum();
    println!("completed {total_ops} ops");
    print_error_frames(&cached.metrics);
    assert!(total_ops > 0, "load generator completed zero operations");
}
