//! Network load generator for `e2nvm-server`: drives YCSB A/B/C over
//! loopback with configurable connections × pipeline depth and records
//! the sustained throughput in `results/net_throughput.md`.
//!
//! By default it boots its own 4-shard server on an ephemeral loopback
//! port (the in-process [`e2nvm_server::Server`], so one binary is a
//! complete experiment); pass `--addr HOST:PORT` to aim it at an
//! already-running `e2nvm-server` instead.
//!
//! Run: `cargo run -p e2nvm-bench --release --bin e2nvm-loadgen`
//! (add `--quick` for a CI-sized burst that writes
//! `results/net_throughput_quick.md`).
//!
//! Flags: `--connections N` (default 4), `--pipeline D` (default 16),
//! `--ops N` per connection per workload, `--shards`, `--segments`,
//! `--seg-bytes`, `--workloads A,B,C`, `--addr`, `--quick`.

use e2nvm_server::frame::{Request, Response};
use e2nvm_server::{demo::demo_store, Client, Server, ServerConfig, ServerHandle};
use e2nvm_telemetry::TelemetryRegistry;
use e2nvm_workloads::ycsb::{Operation, Ycsb};
use std::io::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

struct Args {
    addr: Option<String>,
    connections: usize,
    pipeline: usize,
    ops: usize,
    shards: usize,
    segments: usize,
    seg_bytes: usize,
    workloads: Vec<char>,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 4,
        pipeline: 16,
        ops: 0, // resolved after --quick is known
        shards: 4,
        segments: 0,
        seg_bytes: 64,
        workloads: vec!['A', 'B', 'C'],
        quick: false,
    };
    let mut ops_set = false;
    let mut segments_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--connections" => args.connections = value("--connections").parse().unwrap(),
            "--pipeline" => args.pipeline = value("--pipeline").parse().unwrap(),
            "--ops" => {
                args.ops = value("--ops").parse().unwrap();
                ops_set = true;
            }
            "--shards" => args.shards = value("--shards").parse().unwrap(),
            "--segments" => {
                args.segments = value("--segments").parse().unwrap();
                segments_set = true;
            }
            "--seg-bytes" => args.seg_bytes = value("--seg-bytes").parse().unwrap(),
            "--workloads" => {
                args.workloads = value("--workloads")
                    .split(',')
                    .map(|w| {
                        let c = w.trim().to_ascii_uppercase();
                        assert!(
                            matches!(c.as_str(), "A" | "B" | "C"),
                            "supported workloads: A, B, C (got {w:?})"
                        );
                        c.chars().next().unwrap()
                    })
                    .collect();
            }
            "--quick" => args.quick = true,
            other => panic!("unknown flag {other:?}"),
        }
    }
    if !ops_set {
        args.ops = if args.quick { 150 } else { 25_000 };
    }
    if !segments_set {
        args.segments = if args.quick { 256 } else { 2048 };
    }
    assert!(args.connections > 0, "--connections must be > 0");
    assert!(args.pipeline > 0, "--pipeline must be > 0");
    args
}

fn make_workload(name: char, records: u64, value_len: usize, seed: u64) -> Ycsb {
    match name {
        'A' => Ycsb::a(records, value_len, seed),
        'B' => Ycsb::b(records, value_len, seed),
        _ => Ycsb::c(records, value_len, seed),
    }
}

struct ConnResult {
    ops: u64,
    reads: u64,
    writes: u64,
    errors: u64,
}

/// One connection's run phase: its own socket, its own YCSB stream,
/// ops issued in `pipeline`-deep batches (one write flush per batch).
fn run_connection(
    addr: SocketAddr,
    workload: char,
    records: u64,
    value_len: usize,
    seed: u64,
    ops: usize,
    pipeline: usize,
) -> std::io::Result<ConnResult> {
    let mut client = Client::connect(addr)?;
    let mut gen = make_workload(workload, records, value_len, seed);
    let mut result = ConnResult {
        ops: 0,
        reads: 0,
        writes: 0,
        errors: 0,
    };
    let mut remaining = ops;
    let mut batch = Vec::with_capacity(pipeline);
    while remaining > 0 {
        batch.clear();
        for _ in 0..pipeline.min(remaining) {
            batch.push(match gen.next_op() {
                Operation::Read(key) => Request::Get { key },
                Operation::Update(key, value)
                | Operation::Insert(key, value)
                | Operation::ReadModifyWrite(key, value) => Request::Put { key, value },
                Operation::Scan(key, len) => Request::Scan {
                    lo: key,
                    hi: key,
                    limit: len as u32,
                },
            });
        }
        for (req, resp) in batch.iter().zip(client.pipeline(&batch)?) {
            result.ops += 1;
            match req {
                Request::Get { .. } => result.reads += 1,
                Request::Put { .. } => result.writes += 1,
                _ => {}
            }
            // Typed error frames (e.g. DEGRADED under a worn pool) are
            // counted, not fatal — the run keeps going.
            if let Response::Error { .. } = resp {
                result.errors += 1;
            }
        }
        remaining -= batch.len();
    }
    Ok(result)
}

struct WorkloadResult {
    name: char,
    ops: u64,
    reads: u64,
    writes: u64,
    errors: u64,
    elapsed_s: f64,
}

fn main() {
    let args = parse_args();
    let records = (args.segments / 4) as u64;
    let value_len = args.seg_bytes * 3 / 4;

    // Self-hosted server unless --addr points elsewhere. The in-process
    // option keeps the binary a one-command experiment; the traffic
    // still crosses real loopback sockets either way.
    let (addr, hosted): (SocketAddr, Option<ServerHandle>) = match &args.addr {
        Some(addr) => (addr.parse().expect("--addr must be HOST:PORT"), None),
        None => {
            eprintln!(
                "booting {}-shard server ({} segments x {} B) ...",
                args.shards, args.segments, args.seg_bytes
            );
            let mut store = demo_store(args.shards, args.segments, args.seg_bytes, 0xE2);
            let registry = TelemetryRegistry::new();
            store.attach_telemetry(&registry);
            let handle = Server::new(store, ServerConfig::default())
                .with_telemetry(&registry)
                .start()
                .expect("server binds an ephemeral port");
            (handle.local_addr(), Some(handle))
        }
    };

    // Load phase: one pipelined connection inserts every record.
    let mut loader = Client::connect(addr).expect("connect for load phase");
    let mut gen = make_workload('C', records, value_len, 0);
    let load_keys: Vec<u64> = gen.load_keys().collect();
    let t0 = Instant::now();
    for chunk in load_keys.chunks(args.pipeline) {
        let reqs: Vec<Request> = chunk
            .iter()
            .map(|&key| Request::Put {
                key,
                value: gen.value_for(key, 0),
            })
            .collect();
        for resp in loader.pipeline(&reqs).expect("load phase pipeline") {
            assert!(
                matches!(resp, Response::Stored),
                "load phase PUT failed: {resp:?}"
            );
        }
    }
    eprintln!(
        "loaded {} records in {:.2}s",
        load_keys.len(),
        t0.elapsed().as_secs_f64()
    );

    // Run phase: per workload, `connections` OS threads each drive an
    // independent pipelined connection.
    let mut results: Vec<WorkloadResult> = Vec::new();
    for &workload in &args.workloads {
        let t0 = Instant::now();
        let threads: Vec<_> = (0..args.connections)
            .map(|c| {
                let (ops, pipeline) = (args.ops, args.pipeline);
                std::thread::spawn(move || {
                    run_connection(
                        addr,
                        workload,
                        records,
                        value_len,
                        0x10AD + c as u64,
                        ops,
                        pipeline,
                    )
                })
            })
            .collect();
        let mut total = WorkloadResult {
            name: workload,
            ops: 0,
            reads: 0,
            writes: 0,
            errors: 0,
            elapsed_s: 0.0,
        };
        for t in threads {
            let r = t.join().expect("connection thread").expect("connection io");
            total.ops += r.ops;
            total.reads += r.reads;
            total.writes += r.writes;
            total.errors += r.errors;
        }
        total.elapsed_s = t0.elapsed().as_secs_f64();
        eprintln!(
            "YCSB-{}: {} ops in {:.2}s = {:.0} ops/s ({} reads, {} writes, {} errors)",
            total.name,
            total.ops,
            total.elapsed_s,
            total.ops as f64 / total.elapsed_s,
            total.reads,
            total.writes,
            total.errors
        );
        results.push(total);
    }

    let stats = loader.stats().expect("STATS frame");
    drop(loader);

    // Report.
    let mut md = String::from("# Network serving: pipelined YCSB throughput over loopback\n\n");
    md.push_str(&format!(
        "`e2nvm-loadgen` against a {}-shard `e2nvm-server` ({} segments x {} B, {} records, \
         {}-byte values): {} client connections x pipeline depth {}, {} ops per connection per \
         workload. Frames cross real loopback TCP sockets; the wire format is PROTOCOL.md.\n\n",
        args.shards,
        args.segments,
        args.seg_bytes,
        records,
        value_len,
        args.connections,
        args.pipeline,
        args.ops,
    ));
    md.push_str("| workload | mix | ops | elapsed s | ops/s | error frames |\n");
    md.push_str("|---------:|----:|----:|----------:|------:|-------------:|\n");
    for r in &results {
        let mix = match r.name {
            'A' => "50R/50U",
            'B' => "95R/5U",
            _ => "100R",
        };
        md.push_str(&format!(
            "| YCSB-{} | {} | {} | {:.2} | {:.0} | {} |\n",
            r.name,
            mix,
            r.ops,
            r.elapsed_s,
            r.ops as f64 / r.elapsed_s,
            r.errors
        ));
    }
    md.push_str(&format!("\nServer stats after the run: `{stats}`\n"));

    std::fs::create_dir_all("results").ok();
    // Quick runs get their own file so a CI-sized burst never clobbers
    // full-scale numbers.
    let path = if args.quick {
        "results/net_throughput_quick.md"
    } else {
        "results/net_throughput.md"
    };
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(md.as_bytes()).unwrap();
    eprintln!("wrote {path}");

    let total_ops: u64 = results.iter().map(|r| r.ops).sum();
    println!("completed {total_ops} ops");

    if let Some(handle) = hosted {
        let mut c = Client::connect(addr).expect("connect for shutdown");
        c.shutdown_server().expect("SHUTDOWN frame acknowledged");
        let served = handle.join();
        println!("clean shutdown after {served} connections");
    }
    assert!(total_ops > 0, "load generator completed zero operations");
}
