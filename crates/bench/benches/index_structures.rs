//! Microbenchmark behind Figure 12: per-operation cost of each NVM
//! index structure over the direct node store.

use criterion::{criterion_group, criterion_main, Criterion};
use e2nvm_kvstore::{
    BPlusTree, DirectNodeStore, FpTree, NoveLsm, NvmKvStore, PathHashing, WiscKey,
};
use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};
use std::hint::black_box;

fn store(segments: usize, seg_bytes: usize) -> DirectNodeStore {
    let dev = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(segments)
            .build()
            .unwrap(),
    );
    DirectNodeStore::new(MemoryController::without_wear_leveling(dev))
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_put_overwrite");
    group.sample_size(30);
    let value = [0xA5u8; 16];
    let mut run = |name: &str, kv: &mut dyn NvmKvStore| {
        // Preload so puts hit a warm structure.
        for key in 0..48u64 {
            kv.put(key.wrapping_mul(0x9E37) % 977, &value).unwrap();
        }
        let mut key = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                key = (key + 1) % 977;
                black_box(kv.put(black_box(key), black_box(&value)).is_ok())
            });
        });
    };
    run("btree", &mut BPlusTree::new(store(512, 256)));
    run("fptree", &mut FpTree::new(store(512, 256), 16));
    run(
        "path_hashing",
        &mut PathHashing::new(store(512, 256), 1024, 4, 16).unwrap(),
    );
    run("wisckey", &mut WiscKey::new(store(512, 256)));
    run("novelsm", &mut NoveLsm::new(store(512, 256), 4));
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_get");
    group.sample_size(30);
    let value = [0x3Cu8; 16];
    let mut run = |name: &str, kv: &mut dyn NvmKvStore| {
        for key in 0..64u64 {
            kv.put(key, &value).unwrap();
        }
        let mut key = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                key = (key + 1) % 64;
                black_box(kv.get(black_box(key)).unwrap())
            });
        });
    };
    run("btree", &mut BPlusTree::new(store(256, 256)));
    run("fptree", &mut FpTree::new(store(256, 256), 16));
    run(
        "path_hashing",
        &mut PathHashing::new(store(256, 256), 256, 4, 16).unwrap(),
    );
    run("wisckey", &mut WiscKey::new(store(256, 256)));
    run("novelsm", &mut NoveLsm::new(store(256, 256), 4));
    group.finish();
}

criterion_group!(benches, bench_put, bench_get);
criterion_main!(benches);
