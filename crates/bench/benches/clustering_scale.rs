//! Microbenchmark behind Figure 4: training cost of the three
//! clustering pipelines as feature count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e2nvm_ml::data::segments_to_matrix;
use e2nvm_ml::rng::seeded;
use e2nvm_ml::{ClusterModel, DecConfig, KMeans, Pca, VaeConfig};
use e2nvm_workloads::DatasetKind;
use std::hint::black_box;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_scale");
    group.sample_size(10);
    let n = 128;
    let k = 10;
    for features in [128usize, 512, 2048] {
        let mut rng = seeded(features as u64);
        let items = DatasetKind::MnistLike.generate_sized(n, features / 8, &mut rng);
        let matrix = segments_to_matrix(&items);

        group.bench_with_input(
            BenchmarkId::new("kmeans_raw", features),
            &features,
            |b, _| {
                b.iter(|| black_box(KMeans::fit(&matrix, k, 15, &mut rng)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pca_kmeans", features),
            &features,
            |b, _| {
                b.iter(|| {
                    let pca = Pca::fit(&matrix, 12, 8, &mut rng);
                    let reduced = pca.transform(&matrix);
                    black_box(KMeans::fit(&reduced, k, 15, &mut rng))
                });
            },
        );
        let dec = DecConfig {
            vae: VaeConfig {
                input_dim: features,
                hidden: vec![48],
                latent_dim: 8,
                lr: 3e-3,
                beta: 0.1,
            },
            k,
            pretrain_epochs: 4,
            joint_epochs: 1,
            gamma: 0.2,
            batch: 64,
            kmeans_iters: 15,
            soft_assignment: false,
        };
        group.bench_with_input(
            BenchmarkId::new("vae_kmeans", features),
            &features,
            |b, _| {
                b.iter(|| black_box(ClusterModel::train(&dec, &matrix, None, &mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    // Serving-path cost: one prediction through each trained pipeline.
    let mut rng = seeded(9);
    let items = DatasetKind::MnistLike.generate_sized(128, 64, &mut rng);
    let matrix = segments_to_matrix(&items);
    let query = e2nvm_ml::data::bytes_to_features(&items[0]);

    let raw = KMeans::fit(&matrix, 10, 20, &mut rng);
    c.bench_function("predict/kmeans_raw", |b| {
        b.iter(|| black_box(raw.model.predict(black_box(&query))));
    });

    let pca = Pca::fit(&matrix, 12, 8, &mut rng);
    let reduced = pca.transform(&matrix);
    let pk = KMeans::fit(&reduced, 10, 20, &mut rng);
    c.bench_function("predict/pca_kmeans", |b| {
        b.iter(|| black_box(pk.model.predict(&pca.transform_one(black_box(&query)))));
    });

    let dec = DecConfig {
        vae: VaeConfig {
            input_dim: 512,
            hidden: vec![48],
            latent_dim: 8,
            lr: 3e-3,
            beta: 0.1,
        },
        k: 10,
        pretrain_epochs: 3,
        joint_epochs: 1,
        gamma: 0.2,
        batch: 64,
        kmeans_iters: 15,
        soft_assignment: false,
    };
    let (model, _) = ClusterModel::train(&dec, &matrix, None, &mut rng);
    c.bench_function("predict/vae_kmeans", |b| {
        b.iter(|| black_box(model.predict(black_box(&query))));
    });
}

criterion_group!(benches, bench_clustering, bench_prediction);
criterion_main!(benches);
