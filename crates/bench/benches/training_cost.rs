//! Microbenchmark behind Figures 16 and 18: per-epoch VAE training cost
//! vs segment count, and the serving-path prediction cost of a trained
//! engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e2nvm_bench::systems::{seeded_device, E2System};
use e2nvm_ml::data::segments_to_matrix;
use e2nvm_ml::rng::seeded;
use e2nvm_ml::{Vae, VaeConfig};
use e2nvm_sim::WearTracking;
use e2nvm_workloads::DatasetKind;
use std::hint::black_box;

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("vae_train_epoch");
    group.sample_size(10);
    for n in [128usize, 512, 2048] {
        let mut rng = seeded(n as u64);
        let items = DatasetKind::ImagenetLike.generate_sized(n, 64, &mut rng);
        let features = segments_to_matrix(&items);
        let mut vae = Vae::new(
            VaeConfig {
                input_dim: 512,
                hidden: vec![64],
                latent_dim: 8,
                lr: 3e-3,
                beta: 0.1,
            },
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(vae.train_epoch(&features, 64, &mut rng)));
        });
    }
    group.finish();
}

fn bench_engine_place(c: &mut Criterion) {
    let mut rng = seeded(7);
    let items = DatasetKind::MnistLike.generate_sized(128, 64, &mut rng);
    let dev = seeded_device(64, 128, WearTracking::None, &items);
    let mut sys = E2System::new(dev, E2System::quick_config(64, 8), 0.5).expect("e2");
    let engine = sys.engine_mut();
    let queries = DatasetKind::MnistLike.generate_sized(64, 64, &mut rng);
    let mut i = 0;
    c.bench_function("engine_place_and_recycle_64B", |b| {
        b.iter(|| {
            i = (i + 1) % queries.len();
            let (seg, report) = engine.place_value(black_box(&queries[i])).expect("place");
            engine.recycle_segment(seg).expect("recycle");
            black_box(report)
        });
    });
}

criterion_group!(benches, bench_epoch, bench_engine_place);
criterion_main!(benches);
