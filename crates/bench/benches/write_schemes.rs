//! Microbenchmark behind Figure 10: per-write CPU cost of each write
//! scheme (encode/choose), separate from the device-side flip counts
//! the figure reports.

use criterion::{criterion_group, criterion_main, Criterion};
use e2nvm_baselines::{
    Captopril, Datacon, Dcw, FlipNWrite, HammingTree, InPlaceScheme, MinShift, PlacementScheme,
    Pnw, PnwMode,
};
use e2nvm_ml::rng::seeded;
use e2nvm_sim::LogicalSegment;
use e2nvm_workloads::DatasetKind;
use std::hint::black_box;

fn bench_inplace(c: &mut Criterion) {
    let mut rng = seeded(1);
    let items = DatasetKind::MnistLike.generate_sized(64, 64, &mut rng);
    let old = &items[0];
    let mut group = c.benchmark_group("inplace_encode_64B");
    let mut run = |name: &str, scheme: &mut dyn InPlaceScheme| {
        let mut i = 0;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = (i + 1) % items.len();
                black_box(scheme.encode(0, black_box(old), black_box(&items[i])))
            });
        });
    };
    run("dcw", &mut Dcw);
    run("fnw", &mut FlipNWrite::default());
    run("minshift", &mut MinShift::default());
    run("captopril", &mut Captopril::default());
    group.finish();
}

fn bench_placement_choose(c: &mut Criterion) {
    let mut rng = seeded(2);
    let items = DatasetKind::MnistLike.generate_sized(128, 64, &mut rng);
    let free: Vec<(LogicalSegment, Vec<u8>)> = items
        .iter()
        .enumerate()
        .map(|(i, c)| (LogicalSegment(i), c.clone()))
        .collect();
    let queries = DatasetKind::MnistLike.generate_sized(64, 64, &mut rng);

    let mut group = c.benchmark_group("placement_choose_64B");
    let mut run = |name: &str, scheme: &mut dyn PlacementScheme| {
        let mut srng = seeded(3);
        scheme.initialize(&free, &mut srng);
        let mut i = 0;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                // choose + recycle keeps the pool stable across iters.
                let seg = scheme
                    .choose(black_box(&queries[i]))
                    .expect("pool nonempty");
                scheme.recycle(seg, &items[seg.index()]);
                black_box(seg)
            });
        });
    };
    run("datacon", &mut Datacon::new(false));
    run("hamming_tree", &mut HammingTree::new());
    run("pnw_raw", &mut Pnw::new(10, PnwMode::RawKMeans));
    run(
        "pnw_pca",
        &mut Pnw::new(10, PnwMode::PcaKMeans { components: 12 }),
    );
    group.finish();
}

criterion_group!(benches, bench_inplace, bench_placement_choose);
criterion_main!(benches);
