//! Microbenchmark behind Figure 14: cost of generating padded model
//! inputs with each strategy (the learned LSTM path is the expensive
//! one, matching the paper's complexity-vs-accuracy trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e2nvm_core::{Padder, PaddingLocation, PaddingType};
use e2nvm_ml::rng::seeded;
use e2nvm_workloads::DatasetKind;
use std::hint::black_box;

fn bench_padding_types(c: &mut Criterion) {
    let mut rng = seeded(1);
    let segments = DatasetKind::MnistLike.generate_sized(32, 64, &mut rng);
    let value = &segments[0][..40]; // 320 of 512 bits
    let target_bits = 512;

    let mut group = c.benchmark_group("pad_320_to_512_bits");
    for ptype in PaddingType::ALL {
        let mut padder = Padder::new(PaddingLocation::End, ptype);
        padder.observe(&segments[1]);
        padder.set_memory_ratio(0.4);
        if ptype == PaddingType::Learned {
            padder.train_learned(&segments, 5, &mut rng);
        }
        group.bench_with_input(BenchmarkId::from_parameter(ptype.name()), &ptype, |b, _| {
            b.iter(|| black_box(padder.pad(black_box(value), target_bits, &mut rng)));
        });
    }
    group.finish();
}

fn bench_learned_training(c: &mut Criterion) {
    let mut rng = seeded(2);
    let segments = DatasetKind::MnistLike.generate_sized(32, 64, &mut rng);
    c.bench_function("learned_padder_train_5_epochs", |b| {
        b.iter(|| {
            let mut padder = Padder::new(PaddingLocation::End, PaddingType::Learned);
            padder.train_learned(black_box(&segments), 5, &mut rng);
            black_box(padder)
        });
    });
}

criterion_group!(benches, bench_padding_types, bench_learned_training);
criterion_main!(benches);
