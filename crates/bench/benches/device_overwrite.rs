//! Microbenchmark behind Figure 1: device write cost as a function of
//! content difference (line skipping + DCW).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e2nvm_sim::{DeviceConfig, NvmDevice, PhysicalSegment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_overwrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_overwrite");
    group.sample_size(30);
    let cfg = DeviceConfig::builder()
        .segment_bytes(256)
        .num_segments(4)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for diff_pct in [0usize, 25, 50, 100] {
        let old: Vec<u8> = (0..256).map(|_| rng.gen()).collect();
        let mut new = old.clone();
        let flips = 2048 * diff_pct / 100;
        for bit in 0..flips {
            new[bit / 8] ^= 1 << (bit % 8);
        }
        group.bench_with_input(
            BenchmarkId::new("write_256B", diff_pct),
            &diff_pct,
            |b, _| {
                let mut dev = NvmDevice::new(cfg.clone());
                dev.seed_segment(PhysicalSegment(0), &old).unwrap();
                b.iter(|| {
                    // Restore then overwrite so every iteration measures
                    // the same transition.
                    dev.seed_segment(PhysicalSegment(0), &old).unwrap();
                    black_box(dev.write(PhysicalSegment(0), black_box(&new)).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_swap(c: &mut Criterion) {
    let cfg = DeviceConfig::builder()
        .segment_bytes(256)
        .num_segments(4)
        .build()
        .unwrap();
    c.bench_function("device_swap_segments", |b| {
        let mut dev = NvmDevice::new(cfg.clone());
        dev.seed_segment(PhysicalSegment(0), &[0xAAu8; 256])
            .unwrap();
        dev.seed_segment(PhysicalSegment(1), &[0x55u8; 256])
            .unwrap();
        b.iter(|| {
            black_box(
                dev.swap_segments(PhysicalSegment(0), PhysicalSegment(1))
                    .unwrap(),
            )
        });
    });
}

criterion_group!(benches, bench_overwrite, bench_swap);
criterion_main!(benches);
