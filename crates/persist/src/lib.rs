//! # e2nvm-persist — crash-consistent persistence for the E2-NVM stack
//!
//! One versioned facade over everything the serving stack must remember
//! across a restart, collapsing the previously ad-hoc persistence
//! surfaces (`E2Model::save/load`, `e2nvm_sim::snapshot::{save,load}`,
//! the raw `e2nvm_ml::persist` codec) into a single crate:
//!
//! * [`Wal`] / [`replay_and_truncate`] — a per-shard write-ahead log of
//!   KV mutations: length-prefixed CRC-checksummed records, group-commit
//!   fsync under a configurable [`FlushPolicy`], torn-tail truncation on
//!   replay.
//! * [`StoreSnapshot`] — an atomic full-system snapshot: per shard, the
//!   device image (contents, wear counters, fault state) plus the
//!   engine's [`e2nvm_core::EngineState`] (model weights, retirement,
//!   key index).
//! * [`PersistenceConfig`] — a validated builder (`data_dir`, flush
//!   policy, snapshot period), like `E2Config` and `ServerConfig`.
//! * [`save_model`]/[`load_model`], [`save_device`]/[`load_device`] —
//!   file helpers replacing the deprecated per-crate `save`/`load`
//!   free functions.
//! * [`codec`] — the low-level `Writer`/`Reader`/`Persist` byte codec
//!   re-exported for implementors of new persistent artifacts.
//!
//! The recovery protocol built on these pieces (snapshot load → WAL
//! replay → attach) lives in `e2nvm_kvstore::ShardedE2KvStore::recover`;
//! DESIGN.md §14 documents the format and crash-ordering argument.

#![warn(missing_docs)]

mod config;
mod crc;
mod error;
mod snapshot;
mod telemetry;
mod wal;

pub use config::{FlushPolicy, PersistenceConfig, PersistenceConfigBuilder};
pub use crc::crc32;
pub use error::{PersistError, Result};
pub use snapshot::{ShardState, StoreSnapshot};
pub use telemetry::PersistTelemetry;
pub use wal::{
    decode_records, encode_record, replay_and_truncate, Replay, SyncPort, Wal, WalOp, WalSyncer,
    MAX_RECORD_PAYLOAD,
};

/// The low-level persistence byte codec (header/tag/length discipline),
/// shared by the model artifact and available to new persistent types.
pub mod codec {
    pub use e2nvm_ml::persist::{Persist, PersistError as CodecError, Reader, Writer};
}

use e2nvm_core::E2Model;
use e2nvm_sim::NvmDevice;
use std::path::Path;

/// Save a trained model artifact to a file
/// (replaces the deprecated `E2Model::save`).
pub fn save_model(model: &E2Model, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, model.to_bytes()).map_err(PersistError::Io)
}

/// Load a model artifact from a file
/// (replaces the deprecated `E2Model::load`).
pub fn load_model(path: impl AsRef<Path>) -> Result<E2Model> {
    let bytes = std::fs::read(path)?;
    E2Model::from_bytes(&bytes).map_err(|e| PersistError::Corrupt(format!("model artifact: {e}")))
}

/// Save a device image (contents + wear + fault state) to a file
/// (replaces the deprecated `e2nvm_sim::snapshot::save`).
pub fn save_device(device: &NvmDevice, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, e2nvm_sim::snapshot::to_image(device)).map_err(PersistError::Io)
}

/// Load a device image from a file
/// (replaces the deprecated `e2nvm_sim::snapshot::load`).
pub fn load_device(path: impl AsRef<Path>) -> Result<NvmDevice> {
    let bytes = std::fs::read(path)?;
    e2nvm_sim::snapshot::from_image(&bytes)
        .map_err(|e| PersistError::Corrupt(format!("device image: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_sim::DeviceConfig;

    #[test]
    fn device_file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("e2nvm_persist_facade");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.img");
        let mut dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(64)
                .num_segments(4)
                .block_bytes(64)
                .build()
                .unwrap(),
        );
        dev.seed_segment(e2nvm_sim::PhysicalSegment(1), &[7u8; 64])
            .unwrap();
        save_device(&dev, &path).unwrap();
        let restored = load_device(&path).unwrap();
        assert_eq!(restored.peek(e2nvm_sim::PhysicalSegment(1)), &[7u8; 64]);
        std::fs::remove_file(&path).ok();
        assert!(load_device(&path).is_err());
    }
}
