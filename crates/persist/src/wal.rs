//! The write-ahead log: length-prefixed, CRC-checksummed mutation
//! records with group-commit fsync and torn-tail truncation on replay.
//!
//! # Record format (little-endian)
//!
//! ```text
//! [len: u32][crc32: u32][payload: len bytes]
//! payload = op: u8 (1 = PUT, 2 = DELETE) · key: u64 · value bytes (PUT only)
//! ```
//!
//! The CRC covers the payload. Replay reads records until the first
//! truncated, oversized or checksum-failing record, then truncates the
//! file to the last valid prefix — a crash mid-append can only ever
//! cost the unacknowledged tail, never a previously acked record.
//!
//! # Durability model
//!
//! [`Wal::append`] encodes into an in-memory buffer; [`Wal::commit`]
//! flushes everything buffered with **one** `write(2)` (group commit).
//! The contract callers must keep: commit **before** the
//! acknowledgements reach the client — the serving layer commits once
//! per pipelined request batch, just before it flushes the batch's
//! response frames to the socket. An acknowledged mutation has
//! therefore always reached the kernel, so a **process kill** (SIGKILL,
//! OOM, panic) loses nothing regardless of the flush policy; what dies
//! with the process is only the uncommitted tail, whose acks never left
//! the process either. `fsync` frequency, set by [`FlushPolicy`],
//! only governs what a **machine crash** (power loss) can take with
//! it — see the policy docs for the throughput trade-off. Dropping a
//! `Wal` commits best-effort, so a graceful shutdown needs no explicit
//! final commit.

use crate::config::FlushPolicy;
use crate::crc::crc32;
use crate::telemetry::PersistTelemetry;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// One logged KV mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Full-value upsert.
    Put {
        /// The key.
        key: u64,
        /// The complete value (WAL records are full values, which makes
        /// replay idempotent: re-applying a prefix is harmless).
        value: Vec<u8>,
    },
    /// Key removal.
    Delete {
        /// The key.
        key: u64,
    },
}

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;
/// `op` byte + `key` u64: the smallest (and, for DELETE, the only)
/// valid payload size.
const PAYLOAD_MIN: usize = 9;
/// Upper bound on a single record's payload; anything larger during
/// replay is treated as corruption (a torn length field), not an
/// allocation request.
pub const MAX_RECORD_PAYLOAD: usize = 1 << 28;

/// Append the wire encoding of `op` to `out`.
pub fn encode_record(op: &WalOp, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 8]); // len + crc backpatched below
    match op {
        WalOp::Put { key, value } => {
            out.push(OP_PUT);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(value);
        }
        WalOp::Delete { key } => {
            out.push(OP_DELETE);
            out.extend_from_slice(&key.to_le_bytes());
        }
    }
    let payload_len = out.len() - start - 8;
    let crc = crc32(&out[start + 8..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Decode one record starting at `buf[pos..]`. Returns the op and the
/// position after it, or `None` when the bytes from `pos` on do not
/// form a complete valid record (torn tail or corruption).
fn decode_one(buf: &[u8], pos: usize) -> Option<(WalOp, usize)> {
    let header = buf.get(pos..pos + 8)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4")) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4"));
    if !(PAYLOAD_MIN..=MAX_RECORD_PAYLOAD).contains(&len) {
        return None;
    }
    let payload = buf.get(pos + 8..pos + 8 + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let key = u64::from_le_bytes(payload[1..9].try_into().expect("8"));
    let op = match payload[0] {
        OP_PUT => WalOp::Put {
            key,
            value: payload[9..].to_vec(),
        },
        OP_DELETE if len == PAYLOAD_MIN => WalOp::Delete { key },
        _ => return None,
    };
    Some((op, pos + 8 + len))
}

/// Decode the longest valid record prefix of `buf`. Returns the decoded
/// ops and the byte length of that prefix. Never panics, whatever the
/// input.
pub fn decode_records(buf: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut pos = 0;
    while let Some((op, next)) = decode_one(buf, pos) {
        ops.push(op);
        pos = next;
    }
    (ops, pos)
}

/// The outcome of replaying a WAL file.
#[derive(Debug)]
pub struct Replay {
    /// The decoded mutations, oldest first.
    pub ops: Vec<WalOp>,
    /// Bytes of the valid prefix the ops were decoded from.
    pub valid_bytes: u64,
    /// Bytes the file held before torn-tail truncation.
    pub total_bytes: u64,
}

impl Replay {
    /// Whether a torn tail was found (and truncated away).
    pub fn torn(&self) -> bool {
        self.valid_bytes < self.total_bytes
    }
}

/// Read `path`, decode the longest valid record prefix, and truncate
/// the file down to it (dropping a torn tail from a crash mid-append).
/// A missing file is an empty log, not an error.
pub fn replay_and_truncate(path: &Path) -> std::io::Result<Replay> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                ops: Vec::new(),
                valid_bytes: 0,
                total_bytes: 0,
            })
        }
        Err(e) => return Err(e),
    }
    let (ops, valid) = decode_records(&buf);
    if valid < buf.len() {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(valid as u64)?;
        f.sync_data()?;
    }
    Ok(Replay {
        ops,
        valid_bytes: valid as u64,
        total_bytes: buf.len() as u64,
    })
}

/// Background fsync service for [`FlushPolicy::EveryN`] logs.
///
/// `fdatasync` on a journaling filesystem costs hundreds of
/// microseconds of *I/O wait*, not CPU — paying it inline on the
/// serving path stalls every request behind it. A `WalSyncer` owns a
/// thread that performs policy-triggered syncs on duplicated file
/// descriptors (`fdatasync` on a dup'd fd flushes the same file), so
/// the wait overlaps request serving. The `EveryN` power-loss bound
/// becomes best-effort — a queued sync lands moments after its
/// trigger, and a full queue skips a request because an earlier sync
/// for the same log is still in flight (the next trigger re-arms) —
/// which is exactly the contract `EveryN` documents. Policies with a
/// hard bound ([`FlushPolicy::EveryAppend`]) never use the syncer.
///
/// Requests that queue up while a sync is in flight are **coalesced**:
/// `fdatasync` flushes everything written to the file so far, so of
/// several pending requests for the same log only the newest is
/// performed. Under burst load the sync rate self-clocks to the
/// device instead of multiplying.
///
/// Dropping the syncer drains the queue: every accepted request is
/// performed before `drop` returns.
#[derive(Debug)]
pub struct WalSyncer {
    tx: Option<SyncSender<(u64, File)>>,
    thread: Option<JoinHandle<()>>,
}

/// A cloneable handle a [`Wal`] uses to hand sync requests to its
/// store's [`WalSyncer`]. Carries the log's id so the syncer can
/// coalesce stacked-up requests for the same log.
#[derive(Debug, Clone)]
pub struct SyncPort {
    log_id: u64,
    tx: SyncSender<(u64, File)>,
}

impl WalSyncer {
    /// Spawn the sync thread. Completed syncs count into
    /// `telemetry.wal_fsyncs`, same as inline syncs.
    pub fn spawn(telemetry: PersistTelemetry) -> std::io::Result<Self> {
        let (tx, rx) = sync_channel::<(u64, File)>(64);
        let thread = std::thread::Builder::new()
            .name("e2nvm-wal-sync".into())
            .spawn(move || {
                while let Ok(first) = rx.recv() {
                    // Coalesce: of the requests that queued while we
                    // were idle or syncing, keep only the newest per
                    // log — `fdatasync` flushes everything written to
                    // the file so far, so the newest covers the rest.
                    let mut batch: Vec<(u64, File)> = vec![first];
                    while let Ok(next) = rx.try_recv() {
                        match batch.iter_mut().find(|(id, _)| *id == next.0) {
                            Some(slot) => *slot = next,
                            None => batch.push(next),
                        }
                    }
                    for (_, file) in batch {
                        if file.sync_data().is_ok() {
                            telemetry.wal_fsyncs.inc();
                        }
                    }
                }
            })?;
        Ok(Self {
            tx: Some(tx),
            thread: Some(thread),
        })
    }

    /// A sender handle for the log identified by `log_id` (the shard
    /// index, for a sharded store). Every port must be dropped before
    /// the syncer's own drop can finish draining.
    pub fn port(&self, log_id: u64) -> SyncPort {
        SyncPort {
            log_id,
            tx: self.tx.clone().expect("syncer is live until dropped"),
        }
    }
}

impl Drop for WalSyncer {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// An open, append-mode WAL file with a flush policy.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FlushPolicy,
    /// Records encoded but not yet handed to the kernel; drained by
    /// [`Wal::commit`] with a single `write(2)`.
    pending: Vec<u8>,
    pending_records: u64,
    records_since_sync: u64,
    syncer: Option<SyncPort>,
    telemetry: PersistTelemetry,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending.
    /// Callers recovering an existing log must run
    /// [`replay_and_truncate`] *first* so appends land after the last
    /// valid record.
    pub fn open(
        path: impl Into<PathBuf>,
        policy: FlushPolicy,
        telemetry: PersistTelemetry,
    ) -> std::io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            file,
            path,
            policy,
            pending: Vec::new(),
            pending_records: 0,
            records_since_sync: 0,
            syncer: None,
            telemetry,
        })
    }

    /// Route this log's policy-triggered syncs to a background
    /// [`WalSyncer`] instead of paying `fdatasync` inline on the
    /// serving path. Only meaningful for [`FlushPolicy::EveryN`];
    /// explicit [`Wal::sync`]/[`Wal::reset`] calls stay synchronous.
    pub fn with_syncer(mut self, port: SyncPort) -> Self {
        self.syncer = Some(port);
        self
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Encode a batch of records into the in-memory pending buffer.
    /// No syscall happens here — the records reach the kernel on the
    /// next [`Wal::commit`], which must run before the mutations are
    /// acknowledged to the client (the serving layer commits once per
    /// pipelined request batch). Returns `io::Result` for call-site
    /// symmetry with `commit`; buffering itself cannot fail.
    pub fn append(&mut self, ops: &[WalOp]) -> std::io::Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        self.pending.reserve(ops.iter().fold(0, |n, op| {
            n + 8
                + match op {
                    WalOp::Put { value, .. } => PAYLOAD_MIN + value.len(),
                    WalOp::Delete { .. } => PAYLOAD_MIN,
                }
        }));
        for op in ops {
            encode_record(op, &mut self.pending);
        }
        self.pending_records += ops.len() as u64;
        self.telemetry.wal_appends.add(ops.len() as u64);
        Ok(())
    }

    /// [`Wal::append`] for a single PUT, encoding straight from the
    /// borrowed value — no intermediate [`WalOp`] (and no value clone).
    /// This is the store's per-mutation hot path.
    pub fn append_put(&mut self, key: u64, value: &[u8]) -> std::io::Result<()> {
        let start = self.pending.len();
        self.pending.reserve(8 + PAYLOAD_MIN + value.len());
        self.pending.extend_from_slice(&[0u8; 8]);
        self.pending.push(OP_PUT);
        self.pending.extend_from_slice(&key.to_le_bytes());
        self.pending.extend_from_slice(value);
        let payload_len = self.pending.len() - start - 8;
        let crc = crc32(&self.pending[start + 8..]);
        self.pending[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        self.pending[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        self.pending_records += 1;
        self.telemetry.wal_appends.inc();
        Ok(())
    }

    /// [`Wal::append`] for a single DELETE, without a [`WalOp`].
    pub fn append_delete(&mut self, key: u64) -> std::io::Result<()> {
        self.append(&[WalOp::Delete { key }])
    }

    /// Hand every pending record to the kernel with **one** `write(2)`
    /// (group commit), then fsync if the policy says so. When this
    /// returns, every appended record survives a process kill; the
    /// flush policy decides how many survive power loss.
    pub fn commit(&mut self) -> std::io::Result<()> {
        self.flush_pending()?;
        match self.policy {
            FlushPolicy::EveryAppend => {
                // Hard zero-loss bound: the sync must complete before
                // the ack, so never the background syncer.
                if self.records_since_sync > 0 {
                    self.sync()?;
                }
            }
            FlushPolicy::EveryN(n) => {
                if self.records_since_sync >= u64::from(n) {
                    self.policy_sync()?;
                }
            }
            FlushPolicy::OsOnly => {}
        }
        Ok(())
    }

    /// An `EveryN` trigger: background sync when a [`WalSyncer`] is
    /// attached, inline otherwise.
    fn policy_sync(&mut self) -> std::io::Result<()> {
        let Some(port) = &self.syncer else {
            return self.sync();
        };
        match port.tx.try_send((port.log_id, self.file.try_clone()?)) {
            // Queue full: an earlier sync for this store is still in
            // flight; skip — the next trigger re-arms. (Accounted by
            // the syncer thread, not here, so wal_fsyncs counts real
            // syncs.) A disconnected syncer cannot happen while the
            // store lives, but falling back inline is the safe answer.
            Ok(()) | Err(TrySendError::Full(_)) => {
                self.records_since_sync = 0;
                Ok(())
            }
            Err(TrySendError::Disconnected(_)) => self.sync(),
        }
    }

    /// Write the pending buffer (if any) to the file in one syscall.
    fn flush_pending(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.records_since_sync += self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Force the log to stable storage: flush any pending records, then
    /// `fsync`.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush_pending()?;
        self.file.sync_data()?;
        self.records_since_sync = 0;
        self.telemetry.wal_fsyncs.inc();
        Ok(())
    }

    /// Discard every record — pending and on disk — after a snapshot
    /// has captured their effects, and sync the now-empty log.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.pending.clear();
        self.pending_records = 0;
        self.file.set_len(0)?;
        // An append-mode fd tracks the (now zero) end of file, but
        // rewind explicitly for portability.
        self.file.seek(SeekFrom::Start(0))?;
        self.sync()
    }
}

impl Drop for Wal {
    /// Best-effort flush of uncommitted records, so a *graceful* drop
    /// (tests, clean shutdown) never loses appends. A SIGKILL still
    /// skips this — which is fine: anything pending was never acked.
    fn drop(&mut self) {
        let _ = self.flush_pending();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Put {
                key: 1,
                value: b"hello".to_vec(),
            },
            WalOp::Delete { key: 2 },
            WalOp::Put {
                key: u64::MAX,
                value: Vec::new(),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        for op in ops() {
            encode_record(&op, &mut buf);
        }
        let (decoded, valid) = decode_records(&buf);
        assert_eq!(decoded, ops());
        assert_eq!(valid, buf.len());
    }

    #[test]
    fn every_truncation_recovers_a_prefix() {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for op in ops() {
            encode_record(&op, &mut buf);
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let (decoded, valid) = decode_records(&buf[..cut]);
            // The valid prefix is the largest record boundary <= cut.
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.len(), expect, "cut at {cut}");
            assert_eq!(valid, boundaries[expect], "cut at {cut}");
            assert_eq!(decoded[..], ops()[..expect]);
        }
    }

    #[test]
    fn corrupt_byte_stops_replay() {
        let mut buf = Vec::new();
        for op in ops() {
            encode_record(&op, &mut buf);
        }
        // Flip a byte inside the second record's payload.
        let first_len = {
            let (_, v) = decode_records(&buf[..22]);
            v
        };
        let mut bad = buf.clone();
        bad[first_len + 10] ^= 0x40;
        let (decoded, valid) = decode_records(&bad);
        assert_eq!(decoded.len(), 1);
        assert_eq!(valid, first_len);
    }

    #[test]
    fn file_append_replay_reset() {
        let dir = std::env::temp_dir().join("e2nvm_wal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::open(
            &path,
            FlushPolicy::EveryN(2),
            PersistTelemetry::disconnected(),
        )
        .unwrap();
        wal.append(&ops()).unwrap();
        wal.append(&[WalOp::Delete { key: 9 }]).unwrap();
        drop(wal);
        let replay = replay_and_truncate(&path).unwrap();
        assert_eq!(replay.ops.len(), 4);
        assert!(!replay.torn());
        // Tear the tail: append garbage, replay truncates it away.
        OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(&[1, 2, 3])
            .unwrap();
        let replay = replay_and_truncate(&path).unwrap();
        assert_eq!(replay.ops.len(), 4);
        assert!(replay.torn());
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            replay.valid_bytes,
            "torn tail physically truncated"
        );
        let mut wal =
            Wal::open(&path, FlushPolicy::OsOnly, PersistTelemetry::disconnected()).unwrap();
        wal.reset().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_put_matches_encode_record() {
        let dir = std::env::temp_dir().join("e2nvm_wal_put_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        std::fs::remove_file(&path).ok();
        let mut wal =
            Wal::open(&path, FlushPolicy::OsOnly, PersistTelemetry::disconnected()).unwrap();
        wal.append_put(42, b"direct").unwrap();
        wal.append_delete(42).unwrap();
        wal.commit().unwrap();
        drop(wal);
        let mut expect = Vec::new();
        encode_record(
            &WalOp::Put {
                key: 42,
                value: b"direct".to_vec(),
            },
            &mut expect,
        );
        encode_record(&WalOp::Delete { key: 42 }, &mut expect);
        assert_eq!(std::fs::read(&path).unwrap(), expect);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_buffers_until_commit() {
        let dir = std::env::temp_dir().join("e2nvm_wal_commit_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        std::fs::remove_file(&path).ok();
        let mut wal =
            Wal::open(&path, FlushPolicy::OsOnly, PersistTelemetry::disconnected()).unwrap();
        wal.append(&ops()).unwrap();
        // Not yet committed: nothing has reached the kernel.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        wal.commit().unwrap();
        let committed = std::fs::metadata(&path).unwrap().len();
        assert!(committed > 0);
        // Idempotent: a second commit with nothing pending writes nothing.
        wal.commit().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
        drop(wal);
        let replay = replay_and_truncate(&path).unwrap();
        assert_eq!(replay.ops, ops());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_log() {
        let replay = replay_and_truncate(Path::new("/nonexistent/e2nvm/never.wal")).unwrap();
        assert!(replay.ops.is_empty());
        assert_eq!(replay.total_bytes, 0);
    }
}
