//! Persistence telemetry: WAL and snapshot counters under the
//! `e2nvm_persist_*` namespace, composing with the device/engine/store/
//! server series on the same registry. Zero-sized no-ops without the
//! `telemetry` feature, like every other sink in the workspace.

use e2nvm_telemetry::{Counter, Gauge, TelemetryRegistry};

/// Telemetry sink for one persistent store. Cheap to clone (handles are
/// `Arc`-backed); the per-shard WALs share one sink.
#[derive(Clone, Debug)]
pub struct PersistTelemetry {
    /// WAL records appended (`e2nvm_persist_wal_appends_total`).
    pub wal_appends: Counter,
    /// WAL `fsync` calls issued.
    pub wal_fsyncs: Counter,
    /// Bytes written by snapshots (cumulative).
    pub snapshot_bytes: Counter,
    /// Snapshots taken.
    pub snapshots: Counter,
    /// Wall-clock milliseconds the last recovery took (snapshot load +
    /// WAL replay), `0` until a recovery has run.
    pub recovery_ms: Gauge,
}

impl PersistTelemetry {
    /// A sink wired to nothing.
    pub fn disconnected() -> Self {
        Self {
            wal_appends: Counter::disconnected(),
            wal_fsyncs: Counter::disconnected(),
            snapshot_bytes: Counter::disconnected(),
            snapshots: Counter::disconnected(),
            recovery_ms: Gauge::disconnected(),
        }
    }

    /// Register the persistence series on `registry`.
    pub fn register(registry: &TelemetryRegistry) -> Self {
        Self {
            wal_appends: registry.counter(
                "e2nvm_persist_wal_appends_total",
                "WAL mutation records appended",
            ),
            wal_fsyncs: registry.counter(
                "e2nvm_persist_wal_fsyncs_total",
                "WAL fsync calls issued (group commit boundaries)",
            ),
            snapshot_bytes: registry.counter(
                "e2nvm_persist_snapshot_bytes_total",
                "Bytes written by snapshots",
            ),
            snapshots: registry.counter(
                "e2nvm_persist_snapshots_total",
                "Snapshots taken (periodic, flush-triggered, and drain-time)",
            ),
            recovery_ms: registry.gauge(
                "e2nvm_persist_recovery_ms",
                "Wall-clock milliseconds of the last snapshot+WAL recovery",
            ),
        }
    }
}
