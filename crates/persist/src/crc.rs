//! CRC-32 (IEEE 802.3 polynomial, the one zlib/ethernet/WAL formats
//! share), hand-rolled so the WAL needs no external dependency.
//!
//! Slice-by-8: eight compile-time tables let the hot loop fold 8 bytes
//! per iteration with independent lookups instead of a byte-long
//! dependency chain — the WAL checksums every record payload on the
//! serving path, so this is sub-nanosecond-per-byte territory that a
//! byte-at-a-time table walk would turn into a measurable share of PUT
//! latency. The output is the standard CRC-32/ISO-HDLC value either
//! way (the tests pin the check vectors).

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// Eight 256-entry lookup tables, computed at compile time.
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is
/// the CRC of byte `b` followed by `k` zero bytes, which is what lets
/// eight byte-lookups combine into one 8-byte step.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4"));
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The byte-at-a-time reference the sliced loop must agree with.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut crc = u32::MAX;
        for &b in data {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        crc ^ u32::MAX
    }

    #[test]
    fn known_vectors() {
        // The standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_agrees_with_bytewise_at_every_length() {
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(37) >> 2) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"write-ahead log");
        let b = crc32(b"write-ahead lof");
        assert_ne!(a, b);
    }
}
