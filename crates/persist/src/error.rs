//! Typed persistence errors.

use std::fmt;

/// Everything that can go wrong while persisting or recovering state.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A persisted artifact failed structural validation (bad magic,
    /// unknown version, truncation, checksum mismatch, ...).
    Corrupt(String),
    /// The persisted state does not fit the runtime it is being
    /// restored into (geometry or shard-count mismatch).
    Mismatch(String),
    /// A snapshot was requested but the engine has never been trained —
    /// there is no model or placement state worth persisting yet.
    NotTrained,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persistence artifact: {msg}"),
            PersistError::Mismatch(msg) => write!(f, "persisted state mismatch: {msg}"),
            PersistError::NotTrained => {
                write!(f, "refusing to snapshot: engine has not been trained yet")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PersistError>;
