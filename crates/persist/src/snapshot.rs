//! Full-system snapshots: one atomic file capturing, per shard, the
//! device image (contents + wear + fault state, via
//! `e2nvm_sim::snapshot`), the engine's durable state (model weights,
//! retirement, key index, via `e2nvm_core::EngineState`), and the
//! memory controller's translation state (wear-leveling policy,
//! logical→physical remap, quarantined physical slots, via
//! `e2nvm_sim::ControllerState`).
//!
//! Format (little-endian): magic `E2SS`, version, shard count, one
//! [`ShardState`] block per shard, then a CRC-32 trailer over
//! everything before it. Version 2 appends a controller section to
//! each shard block; version 1 files (no controller section) still
//! load, with [`ShardState::controller`] set to `None` — v1 snapshots
//! were only ever taken under the identity mapping, so "no controller
//! state" and "pass-through controller" coincide.
//! [`StoreSnapshot::save_atomic`] writes to a
//! temp file, fsyncs, renames over `snapshot.e2s` and fsyncs the
//! directory, so a crash mid-snapshot leaves the previous snapshot
//! intact — and because WAL replay is idempotent (records are
//! full-value upserts/deletes), a crash between the rename and the WAL
//! truncation merely replays ops the new snapshot already contains.

use crate::crc::crc32;
use crate::error::{PersistError, Result};
use e2nvm_core::EngineState;
use e2nvm_sim::{ControllerState, LogicalSegment, PhysicalSegment, WearPolicyState};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"E2SS";
const VERSION: u16 = 2;
/// Sanity bound on any length field during decode; larger values are
/// treated as corruption, not allocation requests.
const MAX_FIELD: u64 = 1 << 32;

/// Policy tags for the controller section (version 2).
const POLICY_NONE: u16 = 0;
const POLICY_START_GAP: u16 = 1;
const POLICY_RANDOM_SWAP: u16 = 2;

/// One shard's persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardState {
    /// Device image (`e2nvm_sim::snapshot::to_image`): contents, wear
    /// counters, fault-model state.
    pub device_image: Vec<u8>,
    /// Engine state: serialized model, retired segments, key index.
    pub state: EngineState,
    /// Controller state: wear-leveling policy, logical→physical remap,
    /// quarantined physical slots. `None` when loaded from a version-1
    /// snapshot, which implies a pass-through (identity) controller.
    pub controller: Option<ControllerState>,
}

/// A whole store's snapshot: one [`ShardState`] per shard, in shard
/// order (shard routing is derived from the count, so order matters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Per-shard state, index = shard id.
    pub shards: Vec<ShardState>,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u64(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

fn put_controller(buf: &mut Vec<u8>, cs: &ControllerState) {
    let (tag, fields): (u16, Vec<u64>) = match cs.policy {
        WearPolicyState::None => (POLICY_NONE, Vec::new()),
        WearPolicyState::StartGap { psi, writes, gap } => {
            (POLICY_START_GAP, vec![psi, writes, gap.index() as u64])
        }
        WearPolicyState::RandomSwap {
            psi,
            seed,
            writes,
            draws,
        } => (POLICY_RANDOM_SWAP, vec![psi, seed, writes, draws]),
    };
    buf.extend_from_slice(&tag.to_le_bytes());
    for v in fields {
        put_u64(buf, v);
    }
    put_u64(buf, cs.remap.len() as u64);
    for &p in &cs.remap {
        // `usize::MAX` is the unmapped-gap sentinel; widen it to the
        // u64 sentinel so the value survives on any pointer width.
        put_u64(buf, if p == usize::MAX { u64::MAX } else { p as u64 });
    }
    put_u64(buf, cs.retired.len() as u64);
    for &r in &cs.retired {
        buf.push(u8::from(r));
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| PersistError::Corrupt("snapshot truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn len(&mut self) -> Result<usize> {
        let v = self.u64()?;
        if v > MAX_FIELD {
            return Err(PersistError::Corrupt(format!(
                "implausible length field {v}"
            )));
        }
        Ok(v as usize)
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }
    fn controller(&mut self) -> Result<ControllerState> {
        let policy = match self.u16()? {
            POLICY_NONE => WearPolicyState::None,
            POLICY_START_GAP => WearPolicyState::StartGap {
                psi: self.u64()?,
                writes: self.u64()?,
                gap: PhysicalSegment(self.len()?),
            },
            POLICY_RANDOM_SWAP => WearPolicyState::RandomSwap {
                psi: self.u64()?,
                seed: self.u64()?,
                writes: self.u64()?,
                draws: self.u64()?,
            },
            other => {
                return Err(PersistError::Corrupt(format!(
                    "unknown wear policy tag {other}"
                )))
            }
        };
        let n = self.len()?;
        let mut remap = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let v = self.u64()?;
            remap.push(if v == u64::MAX {
                usize::MAX
            } else if v > MAX_FIELD {
                return Err(PersistError::Corrupt(format!(
                    "implausible remap entry {v}"
                )));
            } else {
                v as usize
            });
        }
        let nr = self.len()?;
        let mut retired = Vec::with_capacity(nr.min(1 << 20));
        for _ in 0..nr {
            retired.push(match self.take(1)?[0] {
                0 => false,
                1 => true,
                b => {
                    return Err(PersistError::Corrupt(format!(
                        "retired flag must be 0 or 1, got {b}"
                    )))
                }
            });
        }
        Ok(ControllerState {
            policy,
            remap,
            retired,
        })
    }
}

impl StoreSnapshot {
    /// Serialize to the `E2SS` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        put_u64(&mut buf, self.shards.len() as u64);
        for shard in &self.shards {
            put_bytes(&mut buf, &shard.device_image);
            put_bytes(&mut buf, &shard.state.model);
            put_u64(&mut buf, shard.state.retired.len() as u64);
            for seg in &shard.state.retired {
                put_u64(&mut buf, seg.index() as u64);
            }
            put_u64(&mut buf, shard.state.entries.len() as u64);
            for &(key, seg, off, len) in &shard.state.entries {
                put_u64(&mut buf, key);
                put_u64(&mut buf, seg.index() as u64);
                put_u64(&mut buf, off as u64);
                put_u64(&mut buf, len as u64);
            }
            match &shard.controller {
                Some(cs) => {
                    buf.extend_from_slice(&1u16.to_le_bytes());
                    put_controller(&mut buf, cs);
                }
                None => buf.extend_from_slice(&0u16.to_le_bytes()),
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Deserialize, verifying magic, version, structure and the CRC
    /// trailer. Never panics on arbitrary input.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        if buf.len() < 4 {
            return Err(PersistError::Corrupt("snapshot too short".into()));
        }
        let (body, trailer) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4"));
        if crc32(body) != stored {
            return Err(PersistError::Corrupt("snapshot checksum mismatch".into()));
        }
        let mut c = Cursor { buf: body, pos: 0 };
        if c.take(4)? != MAGIC {
            return Err(PersistError::Corrupt("not a store snapshot".into()));
        }
        let version = c.u16()?;
        if version != 1 && version != VERSION {
            return Err(PersistError::Corrupt(format!(
                "unknown snapshot version {version}"
            )));
        }
        let shard_count = c.len()?;
        let mut shards = Vec::with_capacity(shard_count.min(1 << 12));
        for _ in 0..shard_count {
            let device_image = c.bytes()?;
            let model = c.bytes()?;
            let n_retired = c.len()?;
            let mut retired = Vec::with_capacity(n_retired.min(1 << 20));
            for _ in 0..n_retired {
                retired.push(LogicalSegment(c.len()?));
            }
            let n_entries = c.len()?;
            let mut entries = Vec::with_capacity(n_entries.min(1 << 20));
            for _ in 0..n_entries {
                let key = c.u64()?;
                let seg = LogicalSegment(c.len()?);
                let off = c.len()?;
                let len = c.len()?;
                entries.push((key, seg, off, len));
            }
            // v1 shard blocks end here; v2 appends the controller
            // section behind a presence tag.
            let controller = if version >= 2 {
                match c.u16()? {
                    0 => None,
                    1 => Some(c.controller()?),
                    other => {
                        return Err(PersistError::Corrupt(format!(
                            "controller presence tag must be 0 or 1, got {other}"
                        )))
                    }
                }
            } else {
                None
            };
            shards.push(ShardState {
                device_image,
                state: EngineState {
                    model,
                    retired,
                    entries,
                },
                controller,
            });
        }
        if c.pos != body.len() {
            return Err(PersistError::Corrupt(
                "trailing bytes after snapshot".into(),
            ));
        }
        Ok(Self { shards })
    }

    /// Write the snapshot atomically to `path`: temp file in the same
    /// directory, fsync, rename over the target, fsync the directory.
    /// Returns the bytes written.
    pub fn save_atomic(&self, path: &Path) -> Result<u64> {
        let bytes = self.to_bytes();
        let dir = path.parent().unwrap_or(Path::new("."));
        std::fs::create_dir_all(dir)?;
        let tmp = path.with_extension("e2s.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself.
        if let Ok(d) = OpenOptions::new().read(true).open(dir) {
            d.sync_all().ok();
        }
        Ok(bytes.len() as u64)
    }

    /// Load a snapshot from `path`; `Ok(None)` when the file does not
    /// exist (fresh start).
    pub fn load(path: &Path) -> Result<Option<Self>> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        Self::from_bytes(&buf).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreSnapshot {
        StoreSnapshot {
            shards: vec![
                ShardState {
                    device_image: vec![1, 2, 3, 4],
                    state: EngineState {
                        model: vec![9; 17],
                        retired: vec![LogicalSegment(3), LogicalSegment(7)],
                        entries: vec![
                            (42, LogicalSegment(1), 0, 64),
                            (43, LogicalSegment(2), 64, 32),
                        ],
                    },
                    controller: Some(ControllerState {
                        policy: WearPolicyState::StartGap {
                            psi: 64,
                            writes: 129,
                            gap: PhysicalSegment(5),
                        },
                        remap: vec![0, 1, 2, 3, 4, 6, 7, 8],
                        retired: vec![false, false, false, true, false, false, false, true, false],
                    }),
                },
                ShardState {
                    device_image: Vec::new(),
                    state: EngineState {
                        model: Vec::new(),
                        retired: Vec::new(),
                        entries: Vec::new(),
                    },
                    controller: None,
                },
                ShardState {
                    device_image: vec![5],
                    state: EngineState {
                        model: Vec::new(),
                        retired: Vec::new(),
                        entries: Vec::new(),
                    },
                    controller: Some(ControllerState {
                        policy: WearPolicyState::RandomSwap {
                            psi: 16,
                            seed: 0xE2,
                            writes: 40,
                            draws: 3,
                        },
                        remap: vec![2, 0, 1],
                        retired: vec![false, true, false],
                    }),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let restored = StoreSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn version_1_snapshots_still_load() {
        // Hand-encode the v1 layout (no controller section) and check
        // it decodes with `controller: None` for every shard.
        let shards = sample().shards;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u16.to_le_bytes());
        put_u64(&mut buf, shards.len() as u64);
        for shard in &shards {
            put_bytes(&mut buf, &shard.device_image);
            put_bytes(&mut buf, &shard.state.model);
            put_u64(&mut buf, shard.state.retired.len() as u64);
            for seg in &shard.state.retired {
                put_u64(&mut buf, seg.index() as u64);
            }
            put_u64(&mut buf, shard.state.entries.len() as u64);
            for &(key, seg, off, len) in &shard.state.entries {
                put_u64(&mut buf, key);
                put_u64(&mut buf, seg.index() as u64);
                put_u64(&mut buf, off as u64);
                put_u64(&mut buf, len as u64);
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let restored = StoreSnapshot::from_bytes(&buf).unwrap();
        assert_eq!(restored.shards.len(), shards.len());
        for (got, want) in restored.shards.iter().zip(&shards) {
            assert_eq!(got.device_image, want.device_image);
            assert_eq!(got.state, want.state);
            assert_eq!(got.controller, None);
        }
    }

    #[test]
    fn corruption_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                StoreSnapshot::from_bytes(&bad).is_err(),
                "flip at {i} undetected"
            );
        }
        assert!(StoreSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(StoreSnapshot::from_bytes(&long).is_err());
    }

    #[test]
    fn atomic_file_roundtrip() {
        let dir = std::env::temp_dir().join("e2nvm_snap_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.e2s");
        let snap = sample();
        let written = snap.save_atomic(&path).unwrap();
        assert_eq!(written, snap.to_bytes().len() as u64);
        assert_eq!(StoreSnapshot::load(&path).unwrap().unwrap(), snap);
        std::fs::remove_file(&path).ok();
        assert!(StoreSnapshot::load(&path).unwrap().is_none());
    }
}
