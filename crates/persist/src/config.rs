//! Validated persistence configuration, following the
//! `E2Config`/`ServerConfig` builder idiom.

use crate::error::{PersistError, Result};
use std::path::PathBuf;

/// When the WAL issues `fsync` after appends.
///
/// Every append reaches the kernel (`write(2)`) before the mutation is
/// acknowledged, whatever the policy — a killed **process** never loses
/// an acked write. The policy only decides how much a **machine** crash
/// (power loss) can take with it, trading durability against the
/// syncs-per-second ceiling of the backing device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// `fsync` after every append batch: zero-loss even on power
    /// failure, at the cost of one sync per (batched) mutation.
    EveryAppend,
    /// Group commit: `fsync` roughly every `n` records (per shard WAL).
    /// Power loss can drop the last ~`n` acked records per shard;
    /// process kills drop nothing. The syncs run on the store's
    /// background `WalSyncer` thread (the serving path only queues
    /// them, and queued requests coalesce per log), so the `n`-record
    /// bound is best-effort — a queued sync lands moments after its
    /// trigger. The default is `EveryN(4096)`: a power-loss window of
    /// tens of milliseconds at benchmarked throughput, an order of
    /// magnitude tighter than the once-per-second default of
    /// comparable append-only logs; see `results/recovery.md` for the
    /// measured overhead. Deployments that cannot afford any
    /// power-loss window should pick [`FlushPolicy::EveryAppend`] and
    /// budget for a synchronous `fdatasync` (hundreds of microseconds
    /// on a journaling filesystem) per request batch.
    EveryN(u32),
    /// Never `fsync` on the append path; the OS flushes on its own
    /// schedule and the store syncs on snapshot/flush/shutdown. Fastest,
    /// still process-kill-safe, power-loss-unsafe.
    OsOnly,
}

impl Default for FlushPolicy {
    /// Group commit every 4096 records per shard — the trade documented
    /// on [`FlushPolicy::EveryN`].
    fn default() -> Self {
        FlushPolicy::EveryN(4096)
    }
}

/// Configuration for a persistent store: where state lives, how eagerly
/// the WAL syncs, and how often snapshots retire the log.
///
/// Construct via [`PersistenceConfig::builder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// Directory holding the snapshot (`snapshot.e2s`) and the per-shard
    /// WALs (`wal/shard-NNN.wal`). Created on demand.
    pub data_dir: PathBuf,
    /// WAL fsync policy (see [`FlushPolicy`]).
    pub flush_policy: FlushPolicy,
    /// Take a snapshot (and truncate the WALs) automatically every this
    /// many mutations. `0` disables automatic snapshots — the final
    /// drain-time snapshot and explicit `flush` calls still run.
    pub snapshot_every_ops: u64,
}

impl Default for PersistenceConfig {
    fn default() -> Self {
        Self {
            data_dir: PathBuf::from("e2nvm-data"),
            flush_policy: FlushPolicy::default(),
            snapshot_every_ops: 0,
        }
    }
}

impl PersistenceConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> PersistenceConfigBuilder {
        PersistenceConfigBuilder::default()
    }

    /// Check invariants: a non-empty data directory and a nonzero group
    /// size for [`FlushPolicy::EveryN`].
    pub fn validate(&self) -> Result<()> {
        if self.data_dir.as_os_str().is_empty() {
            return Err(PersistError::Mismatch(
                "persistence data_dir must not be empty".into(),
            ));
        }
        if self.flush_policy == FlushPolicy::EveryN(0) {
            return Err(PersistError::Mismatch(
                "flush_policy EveryN(0) would never sync; use OsOnly to opt out".into(),
            ));
        }
        Ok(())
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.data_dir.join("snapshot.e2s")
    }

    /// Path of shard `i`'s WAL file.
    pub fn wal_path(&self, shard: usize) -> PathBuf {
        self.data_dir
            .join("wal")
            .join(format!("shard-{shard:03}.wal"))
    }
}

/// Builder for [`PersistenceConfig`] — the same validated-`build()`
/// idiom as `E2Config::builder`.
#[derive(Debug, Clone, Default)]
pub struct PersistenceConfigBuilder {
    cfg: PersistenceConfig,
}

impl PersistenceConfigBuilder {
    /// Directory holding the snapshot and per-shard WALs.
    pub fn data_dir(mut self, value: impl Into<PathBuf>) -> Self {
        self.cfg.data_dir = value.into();
        self
    }

    /// WAL fsync policy.
    pub fn flush_policy(mut self, value: FlushPolicy) -> Self {
        self.cfg.flush_policy = value;
        self
    }

    /// Automatic snapshot period in mutations (`0` = manual only).
    pub fn snapshot_every_ops(mut self, value: u64) -> Self {
        self.cfg.snapshot_every_ops = value;
        self
    }

    /// Validate and build the config.
    pub fn build(self) -> Result<PersistenceConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        PersistenceConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(PersistenceConfig::builder().data_dir("").build().is_err());
        assert!(PersistenceConfig::builder()
            .flush_policy(FlushPolicy::EveryN(0))
            .build()
            .is_err());
        let cfg = PersistenceConfig::builder()
            .data_dir("/tmp/x")
            .flush_policy(FlushPolicy::OsOnly)
            .snapshot_every_ops(1000)
            .build()
            .unwrap();
        assert_eq!(cfg.wal_path(7).file_name().unwrap(), "shard-007.wal");
        assert_eq!(cfg.snapshot_path().file_name().unwrap(), "snapshot.e2s");
    }
}
