//! Property tests for the persistence formats: the WAL record codec
//! and the store snapshot must round-trip arbitrary values, reject
//! arbitrary corruption, and never decode past a torn tail.

use e2nvm_core::EngineState;
use e2nvm_persist::{
    crc32, decode_records, encode_record, replay_and_truncate, ShardState, StoreSnapshot, WalOp,
};
use e2nvm_sim::{ControllerState, LogicalSegment, PhysicalSegment, WearPolicyState};
use proptest::prelude::*;

fn wal_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(key, value)| WalOp::Put { key, value }),
        any::<u64>().prop_map(|key| WalOp::Delete { key }),
    ]
}

fn wal_ops() -> impl Strategy<Value = Vec<WalOp>> {
    proptest::collection::vec(wal_op(), 0..16)
}

fn encode_all(ops: &[WalOp]) -> Vec<u8> {
    let mut buf = Vec::new();
    for op in ops {
        encode_record(op, &mut buf);
    }
    buf
}

fn wear_policy() -> impl Strategy<Value = WearPolicyState> {
    prop_oneof![
        Just(WearPolicyState::None),
        (any::<u64>(), any::<u64>(), 0usize..10_000).prop_map(|(psi, writes, gap)| {
            WearPolicyState::StartGap {
                psi,
                writes,
                gap: PhysicalSegment(gap),
            }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(psi, seed, writes, draws)| WearPolicyState::RandomSwap {
                psi,
                seed,
                writes,
                draws,
            }
        ),
    ]
}

fn controller_state() -> impl Strategy<Value = Option<ControllerState>> {
    (
        any::<bool>(),
        wear_policy(),
        proptest::collection::vec(0usize..10_000, 0..12),
        proptest::collection::vec(any::<bool>(), 0..12),
    )
        .prop_map(|(present, policy, remap, retired)| {
            present.then_some(ControllerState {
                policy,
                remap,
                retired,
            })
        })
}

fn shard_state() -> impl Strategy<Value = ShardState> {
    (
        proptest::collection::vec(any::<u8>(), 0..96),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(0usize..10_000, 0..8),
        proptest::collection::vec(
            (any::<u64>(), 0usize..10_000, 0usize..4096, 0usize..4096),
            0..8,
        ),
        controller_state(),
    )
        .prop_map(
            |(device_image, model, retired, entries, controller)| ShardState {
                device_image,
                state: EngineState {
                    model,
                    retired: retired.into_iter().map(LogicalSegment).collect(),
                    entries: entries
                        .into_iter()
                        .map(|(key, seg, off, len)| (key, LogicalSegment(seg), off, len))
                        .collect(),
                },
                controller,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of ops decodes back verbatim, consuming every byte.
    #[test]
    fn wal_records_roundtrip(ops in wal_ops()) {
        let buf = encode_all(&ops);
        let (decoded, consumed) = decode_records(&buf);
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, ops);
    }

    /// Cutting the log anywhere yields a clean prefix of the original
    /// ops and never decodes into the torn region — the invariant the
    /// recovery path's torn-tail truncation relies on.
    #[test]
    fn torn_tail_decodes_to_a_prefix(ops in wal_ops(), cut_frac in 0.0f64..1.0) {
        let buf = encode_all(&ops);
        let cut = (buf.len() as f64 * cut_frac) as usize;
        let (decoded, consumed) = decode_records(&buf[..cut]);
        prop_assert!(consumed <= cut);
        prop_assert!(decoded.len() <= ops.len());
        prop_assert_eq!(&decoded[..], &ops[..decoded.len()]);
        // The consumed prefix is exactly the encoding of the decoded ops.
        prop_assert_eq!(consumed, encode_all(&decoded).len());
    }

    /// Flipping any single bit of a record's payload is caught by the
    /// CRC: the record (and everything after it) is rejected.
    #[test]
    fn payload_bit_flip_is_detected(op in wal_op(), bit in any::<u16>()) {
        let mut buf = Vec::new();
        encode_record(&op, &mut buf);
        let payload_start = 8; // [len u32][crc u32] header
        let payload_bits = (buf.len() - payload_start) * 8;
        let bit = bit as usize % payload_bits;
        buf[payload_start + bit / 8] ^= 1 << (bit % 8);
        let (decoded, consumed) = decode_records(&buf);
        prop_assert_eq!(decoded.len(), 0);
        prop_assert_eq!(consumed, 0);
    }

    /// `replay_and_truncate` on a log with a torn tail reports the torn
    /// bytes and rewrites the file to the clean prefix.
    #[test]
    fn replay_truncates_torn_files(ops in wal_ops(), torn in proptest::collection::vec(any::<u8>(), 1..7)) {
        let dir = std::env::temp_dir().join("e2nvm_prop_persist_wal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("torn-{}.wal", ops.len()));
        let mut buf = encode_all(&ops);
        let clean = buf.len() as u64;
        // A tail shorter than a record header can never be a valid
        // record, whatever its bytes: always torn.
        buf.extend_from_slice(&torn);
        std::fs::write(&path, &buf).unwrap();
        let replay = replay_and_truncate(&path).unwrap();
        prop_assert_eq!(&replay.ops[..], &ops[..]);
        prop_assert_eq!(replay.valid_bytes, clean);
        prop_assert_eq!(replay.total_bytes, clean + torn.len() as u64);
        prop_assert!(replay.torn());
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), clean);
        std::fs::remove_file(&path).ok();
    }

    /// Snapshots round-trip arbitrary shard states bit-exactly.
    #[test]
    fn snapshot_roundtrips(shards in proptest::collection::vec(shard_state(), 0..4)) {
        let snap = StoreSnapshot { shards };
        let bytes = snap.to_bytes();
        let back = StoreSnapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// Any strict prefix of a snapshot fails to decode (the CRC trailer
    /// no longer matches), and decoding never panics on it.
    #[test]
    fn snapshot_rejects_truncation(shards in proptest::collection::vec(shard_state(), 1..3), cut_frac in 0.0f64..1.0) {
        let bytes = StoreSnapshot { shards }.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(StoreSnapshot::from_bytes(&bytes[..cut]).is_err());
    }

    /// Flipping any single bit of a snapshot is caught by the CRC
    /// trailer.
    #[test]
    fn snapshot_rejects_bit_flips(shards in proptest::collection::vec(shard_state(), 0..3), bit in any::<u32>()) {
        let mut bytes = StoreSnapshot { shards }.to_bytes();
        let nbits = bytes.len() * 8;
        let bit = bit as usize % nbits;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(StoreSnapshot::from_bytes(&bytes).is_err());
    }

    /// The slice-by-8 CRC agrees with a byte-at-a-time reference on
    /// arbitrary data — lengths straddling the 8-byte fast path, its
    /// remainder loop, and everything between.
    #[test]
    fn crc_agrees_with_bytewise_reference(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Independent reference: reflected CRC-32/ISO-HDLC, one bit at
        // a time, no tables shared with the implementation under test.
        let mut crc = u32::MAX;
        for &b in &data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
        }
        prop_assert_eq!(crc32(&data), crc ^ u32::MAX);
    }
}
