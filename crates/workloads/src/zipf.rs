//! Key-choice distributions for the YCSB generator: zipfian (Gray et
//! al.'s rejection-free method with precomputed zeta), scrambled
//! zipfian, "latest", and uniform.

use rand::Rng;

/// Zipfian distribution over `0..n` with exponent `theta` (YCSB default
/// 0.99). Item 0 is the most popular.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Construct for `n` items with the YCSB-standard θ = 0.99.
    pub fn new(n: usize) -> Self {
        Self::with_theta(n, 0.99)
    }

    /// Construct with an explicit θ ∈ (0, 1).
    ///
    /// # Panics
    /// Panics if `n == 0` or θ ∉ (0, 1).
    pub fn with_theta(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipfian: n must be > 0");
        assert!(
            (0.0..1.0).contains(&theta),
            "Zipfian: theta must be in (0,1)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Draw one rank (0 = hottest).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64) * spread) as usize % self.n
    }

    /// Extend the item space (used by insert-heavy workloads). Cheap
    /// incremental zeta update.
    pub fn grow(&mut self, new_n: usize) {
        if new_n <= self.n {
            return;
        }
        for i in self.n + 1..=new_n {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.n = new_n;
        self.eta =
            (1.0 - (2.0 / self.n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zetan);
    }
}

/// FNV-style scatter so that popular zipfian ranks map to scattered
/// keys (YCSB's "scrambled zipfian").
#[inline]
pub fn scramble(rank: u64) -> u64 {
    rank.wrapping_mul(0xC6A4_A793_5BD1_E995).rotate_left(47) ^ rank
}

/// "Latest" distribution: like zipfian but anchored at the most
/// recently inserted key (rank 0 = newest).
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    /// Construct over the current key count.
    pub fn new(n: usize) -> Self {
        Self {
            zipf: Zipfian::new(n.max(1)),
        }
    }

    /// Draw a key index given `max_key` is the newest (0-based count-1).
    pub fn sample<R: Rng>(&self, rng: &mut R, max_key: u64) -> u64 {
        let rank = self.zipf.sample(rng) as u64;
        max_key.saturating_sub(rank)
    }

    /// Track inserts.
    pub fn grow(&mut self, n: usize) {
        self.zipf.grow(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hottest_items_dominate() {
        let z = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 under θ=0.99 over 1000 items gets ~1/ζ(1000) ≈ 13%.
        assert!(counts[0] > 80_00, "rank0 count {}", counts[0]);
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500].saturating_sub(5));
        // All samples in range (implicitly checked by indexing).
    }

    #[test]
    fn theta_zero_is_nearly_uniform() {
        let z = Zipfian::with_theta(100, 0.01);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 2.0, "max={max} min={min}");
    }

    #[test]
    fn grow_extends_range() {
        let mut z = Zipfian::new(10);
        z.grow(1000);
        assert_eq!(z.n(), 1000);
        let mut rng = StdRng::seed_from_u64(3);
        let saw_large = (0..10_000).any(|_| z.sample(&mut rng) >= 10);
        assert!(saw_large);
    }

    #[test]
    fn scramble_is_deterministic_and_spreading() {
        assert_eq!(scramble(5), scramble(5));
        let distinct: std::collections::HashSet<u64> = (0..1000).map(scramble).collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn latest_prefers_recent() {
        let l = Latest::new(1000);
        let mut rng = StdRng::seed_from_u64(4);
        let newest_hits = (0..10_000)
            .filter(|_| l.sample(&mut rng, 999) >= 990)
            .count();
        assert!(newest_hits > 3000, "newest_hits={newest_hits}");
    }
}
