//! A native YCSB-compatible workload generator (Cooper et al., SoCC
//! '10): the six core workloads A–F with their standard operation
//! mixes and request distributions, as used in the paper's §5.2.1.

use crate::zipf::{scramble, Latest, Zipfian};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Read one key.
    Read(u64),
    /// Overwrite an existing key.
    Update(u64, Vec<u8>),
    /// Insert a new key.
    Insert(u64, Vec<u8>),
    /// Range scan from a key, with a record count.
    Scan(u64, usize),
    /// Read-modify-write of one key.
    ReadModifyWrite(u64, Vec<u8>),
}

impl Operation {
    /// The key the operation addresses.
    pub fn key(&self) -> u64 {
        match self {
            Operation::Read(k)
            | Operation::Update(k, _)
            | Operation::Insert(k, _)
            | Operation::Scan(k, _)
            | Operation::ReadModifyWrite(k, _) => *k,
        }
    }

    /// Whether the operation writes.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Operation::Update(..) | Operation::Insert(..) | Operation::ReadModifyWrite(..)
        )
    }
}

/// Request-distribution choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distribution {
    /// Scrambled zipfian (workloads A, B, C, E, F).
    Zipfian,
    /// Skewed toward recent inserts (workload D).
    Latest,
    /// Uniform.
    Uniform,
}

/// Operation mix (proportions sum to 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mix {
    /// Proportion of reads.
    pub read: f64,
    /// Proportion of updates.
    pub update: f64,
    /// Proportion of inserts.
    pub insert: f64,
    /// Proportion of scans.
    pub scan: f64,
    /// Proportion of read-modify-writes.
    pub rmw: f64,
}

/// The workload generator.
#[derive(Debug)]
pub struct Ycsb {
    name: &'static str,
    mix: Mix,
    dist: Distribution,
    value_len: usize,
    record_count: u64,
    zipf: Zipfian,
    latest: Latest,
    max_scan: usize,
    rng: StdRng,
}

impl Ycsb {
    fn new(
        name: &'static str,
        mix: Mix,
        dist: Distribution,
        record_count: u64,
        value_len: usize,
        seed: u64,
    ) -> Self {
        let n = record_count.max(1) as usize;
        Self {
            name,
            mix,
            dist,
            value_len,
            record_count,
            zipf: Zipfian::new(n),
            latest: Latest::new(n),
            max_scan: 100,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Workload A: 50% reads, 50% updates, zipfian.
    pub fn a(records: u64, value_len: usize, seed: u64) -> Self {
        Self::new(
            "A",
            Mix {
                read: 0.5,
                update: 0.5,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            Distribution::Zipfian,
            records,
            value_len,
            seed,
        )
    }

    /// Workload B: 95% reads, 5% updates, zipfian.
    pub fn b(records: u64, value_len: usize, seed: u64) -> Self {
        Self::new(
            "B",
            Mix {
                read: 0.95,
                update: 0.05,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            Distribution::Zipfian,
            records,
            value_len,
            seed,
        )
    }

    /// Workload C: 100% reads, zipfian.
    pub fn c(records: u64, value_len: usize, seed: u64) -> Self {
        Self::new(
            "C",
            Mix {
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            Distribution::Zipfian,
            records,
            value_len,
            seed,
        )
    }

    /// Workload D: 95% reads, 5% inserts, latest distribution.
    pub fn d(records: u64, value_len: usize, seed: u64) -> Self {
        Self::new(
            "D",
            Mix {
                read: 0.95,
                update: 0.0,
                insert: 0.05,
                scan: 0.0,
                rmw: 0.0,
            },
            Distribution::Latest,
            records,
            value_len,
            seed,
        )
    }

    /// Workload E: 95% scans, 5% inserts, zipfian.
    pub fn e(records: u64, value_len: usize, seed: u64) -> Self {
        Self::new(
            "E",
            Mix {
                read: 0.0,
                update: 0.0,
                insert: 0.05,
                scan: 0.95,
                rmw: 0.0,
            },
            Distribution::Zipfian,
            records,
            value_len,
            seed,
        )
    }

    /// Workload F: 50% reads, 50% read-modify-writes, zipfian.
    pub fn f(records: u64, value_len: usize, seed: u64) -> Self {
        Self::new(
            "F",
            Mix {
                read: 0.5,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.5,
            },
            Distribution::Zipfian,
            records,
            value_len,
            seed,
        )
    }

    /// All six core workloads.
    pub fn all(records: u64, value_len: usize, seed: u64) -> Vec<Ycsb> {
        vec![
            Self::a(records, value_len, seed),
            Self::b(records, value_len, seed + 1),
            Self::c(records, value_len, seed + 2),
            Self::d(records, value_len, seed + 3),
            Self::e(records, value_len, seed + 4),
            Self::f(records, value_len, seed + 5),
        ]
    }

    /// Workload name ("A".."F").
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Keys loaded in the load phase: `0..records`, scrambled.
    pub fn load_keys(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.record_count).map(scramble)
    }

    /// Generate the value for a key (deterministic content derived from
    /// the key plus a version counter, so updates actually change bits).
    pub fn value_for(&mut self, key: u64, version: u32) -> Vec<u8> {
        let mut state = key ^ (u64::from(version) << 32) ^ 0x9E37_79B9;
        (0..self.value_len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    fn pick_key(&mut self) -> u64 {
        match self.dist {
            Distribution::Zipfian => {
                scramble(self.zipf.sample(&mut self.rng) as u64) % self.record_count.max(1)
            }
            Distribution::Latest => {
                let max = self.record_count.saturating_sub(1);
                self.latest.sample(&mut self.rng, max)
            }
            Distribution::Uniform => self.rng.gen_range(0..self.record_count.max(1)),
        }
        .min(self.record_count.saturating_sub(1))
    }

    /// Generate the next operation. Keys for reads/updates refer to
    /// load-phase keys via [`scramble`] of the picked index for zipfian
    /// workloads, the raw index for latest/uniform.
    pub fn next_op(&mut self) -> Operation {
        let r: f64 = self.rng.gen();
        let m = self.mix.clone();
        let idx = self.pick_key();
        let key = match self.dist {
            Distribution::Zipfian => scramble(idx),
            _ => scramble(idx),
        };
        let version = self.rng.gen::<u32>() & 0xFF;
        if r < m.read {
            Operation::Read(key)
        } else if r < m.read + m.update {
            let value = self.value_for(key, version);
            Operation::Update(key, value)
        } else if r < m.read + m.update + m.insert {
            let new_index = self.record_count;
            self.record_count += 1;
            self.zipf.grow(self.record_count as usize);
            self.latest.grow(self.record_count as usize);
            let new_key = scramble(new_index);
            let value = self.value_for(new_key, 0);
            Operation::Insert(new_key, value)
        } else if r < m.read + m.update + m.insert + m.scan {
            let len = self.rng.gen_range(1..=self.max_scan);
            Operation::Scan(key, len)
        } else {
            let value = self.value_for(key, version);
            Operation::ReadModifyWrite(key, value)
        }
    }

    /// Generate `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_of(ops: &[Operation]) -> (f64, f64, f64, f64, f64) {
        let n = ops.len() as f64;
        let count = |f: &dyn Fn(&Operation) -> bool| ops.iter().filter(|o| f(o)).count() as f64 / n;
        (
            count(&|o| matches!(o, Operation::Read(_))),
            count(&|o| matches!(o, Operation::Update(..))),
            count(&|o| matches!(o, Operation::Insert(..))),
            count(&|o| matches!(o, Operation::Scan(..))),
            count(&|o| matches!(o, Operation::ReadModifyWrite(..))),
        )
    }

    #[test]
    fn workload_a_mix() {
        let mut w = Ycsb::a(1000, 64, 1);
        let ops = w.take_ops(10_000);
        let (r, u, ..) = mix_of(&ops);
        assert!((r - 0.5).abs() < 0.03, "reads {r}");
        assert!((u - 0.5).abs() < 0.03, "updates {u}");
    }

    #[test]
    fn workload_c_read_only() {
        let mut w = Ycsb::c(1000, 64, 2);
        let ops = w.take_ops(1000);
        assert!(ops.iter().all(|o| matches!(o, Operation::Read(_))));
    }

    #[test]
    fn workload_d_inserts_new_keys() {
        let mut w = Ycsb::d(1000, 64, 3);
        let ops = w.take_ops(10_000);
        let inserts: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Operation::Insert(k, _) => Some(*k),
                _ => None,
            })
            .collect();
        assert!(!inserts.is_empty());
        // Inserted keys are unique.
        let distinct: std::collections::HashSet<_> = inserts.iter().collect();
        assert_eq!(distinct.len(), inserts.len());
    }

    #[test]
    fn workload_e_scan_heavy() {
        let mut w = Ycsb::e(1000, 64, 4);
        let ops = w.take_ops(5000);
        let (_, _, _, s, _) = mix_of(&ops);
        assert!((s - 0.95).abs() < 0.02, "scans {s}");
        for op in &ops {
            if let Operation::Scan(_, len) = op {
                assert!((1..=100).contains(len));
            }
        }
    }

    #[test]
    fn workload_f_has_rmw() {
        let mut w = Ycsb::f(1000, 64, 5);
        let ops = w.take_ops(5000);
        let (r, _, _, _, m) = mix_of(&ops);
        assert!((r - 0.5).abs() < 0.03);
        assert!((m - 0.5).abs() < 0.03);
    }

    #[test]
    fn zipfian_skew_visible_in_ops() {
        let mut w = Ycsb::a(1000, 16, 6);
        let ops = w.take_ops(20_000);
        let mut counts: std::collections::HashMap<u64, usize> = Default::default();
        for op in &ops {
            *counts.entry(op.key()).or_default() += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max > 500, "no hot key: max={max}");
    }

    #[test]
    fn values_differ_across_versions() {
        let mut w = Ycsb::a(10, 32, 7);
        let v1 = w.value_for(5, 1);
        let v2 = w.value_for(5, 2);
        assert_eq!(v1.len(), 32);
        assert_ne!(v1, v2);
        // Deterministic per (key, version).
        assert_eq!(v1, w.value_for(5, 1));
    }

    #[test]
    fn update_keys_come_from_loaded_set() {
        let mut w = Ycsb::b(100, 16, 8);
        let loaded: std::collections::HashSet<u64> = w.load_keys().collect();
        for op in w.take_ops(2000) {
            if let Operation::Update(k, _) = op {
                assert!(loaded.contains(&k), "update key {k} never loaded");
            }
        }
    }
}
