//! Synthetic dataset generators with the *structure* of the paper's
//! evaluation datasets (§5.2.1).
//!
//! E2-NVM exploits exactly one property of its datasets: values form
//! hamming-distance clusters, and new writes resemble resident data.
//! Each generator here controls that property explicitly (class
//! templates + bounded noise, temporal correlation, skewed categorical
//! fields), so relative comparisons between write schemes transfer. The
//! real datasets (MNIST, CIFAR-10, ImageNet, CCTV video, UCI tables)
//! are not redistributable/downloadable in this environment; the
//! substitution is documented in DESIGN.md §2.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which dataset family to generate — mirrors the paper's list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// 28×28 binary digit-like images (98 bytes), 10 classes.
    MnistLike,
    /// 28×28 binary clothing-like images (98 bytes), 10 classes with a
    /// different template family than MNIST-like.
    FashionLike,
    /// 32×32×3 color images (3072 bytes), 10 classes.
    CifarLike,
    /// Large labeled images (configurable size), 20 classes.
    ImagenetLike,
    /// Access-log records: packed categorical fields with zipf-skewed
    /// users/resources (Amazon Access Samples shape).
    AmazonAccess,
    /// Spatially correlated (lat, lon, altitude) fixed-point triples
    /// (3D Road Network shape).
    RoadNetwork,
    /// Sparse bag-of-words count rows (PubMed DocWord shape).
    PubMed,
}

impl DatasetKind {
    /// All kinds, in the paper's order of appearance.
    pub const ALL: [DatasetKind; 7] = [
        DatasetKind::MnistLike,
        DatasetKind::FashionLike,
        DatasetKind::CifarLike,
        DatasetKind::ImagenetLike,
        DatasetKind::AmazonAccess,
        DatasetKind::RoadNetwork,
        DatasetKind::PubMed,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "MNIST",
            DatasetKind::FashionLike => "Fashion-MNIST",
            DatasetKind::CifarLike => "CIFAR-10",
            DatasetKind::ImagenetLike => "ImageNet",
            DatasetKind::AmazonAccess => "Amazon Access",
            DatasetKind::RoadNetwork => "3D Road Network",
            DatasetKind::PubMed => "PubMed",
        }
    }

    /// Natural item size in bytes.
    pub fn item_bytes(&self) -> usize {
        match self {
            DatasetKind::MnistLike | DatasetKind::FashionLike => 98,
            DatasetKind::CifarLike => 3072,
            DatasetKind::ImagenetLike => 4096,
            DatasetKind::AmazonAccess => 32,
            DatasetKind::RoadNetwork => 24,
            DatasetKind::PubMed => 128,
        }
    }

    /// Generate `n` items with this kind's natural size.
    pub fn generate<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Vec<u8>> {
        match self {
            DatasetKind::MnistLike => binary_images(n, 28, 10, 0xA11CE, 0.06, rng),
            DatasetKind::FashionLike => binary_images(n, 28, 10, 0xFA5410, 0.10, rng),
            DatasetKind::CifarLike => gray_images(n, 3072, 10, 0xC1FA8, 18, rng),
            DatasetKind::ImagenetLike => gray_images(n, 4096, 20, 0x1A6E7, 22, rng),
            DatasetKind::AmazonAccess => amazon_access(n, rng),
            DatasetKind::RoadNetwork => road_network(n, rng),
            DatasetKind::PubMed => pubmed(n, 512, rng),
        }
    }

    /// Generate items resized (tiled/truncated) to exactly `bytes`.
    pub fn generate_sized<R: Rng>(&self, n: usize, bytes: usize, rng: &mut R) -> Vec<Vec<u8>> {
        self.generate(n, rng)
            .into_iter()
            .map(|item| resize_item(&item, bytes))
            .collect()
    }
}

/// Tile or truncate an item to an exact size (the paper resizes
/// ImageNet images "to fit the size of the elements in the pool").
pub fn resize_item(item: &[u8], bytes: usize) -> Vec<u8> {
    assert!(!item.is_empty(), "resize_item: empty item");
    item.iter().copied().cycle().take(bytes).collect()
}

/// A deterministic per-class sub-RNG so templates are stable across
/// calls regardless of how many samples are drawn.
fn class_rng(family_seed: u64, class: usize) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(
        family_seed ^ (class as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Binary class-template images: `side × side` bits, `classes` stroke
/// templates, per-sample flip noise.
fn binary_images<R: Rng>(
    n: usize,
    side: usize,
    classes: usize,
    family_seed: u64,
    noise: f64,
    rng: &mut R,
) -> Vec<Vec<u8>> {
    let bytes = (side * side).div_ceil(8);
    // Build templates: a handful of class-specific filled rectangles
    // ("strokes") on a zero canvas.
    let templates: Vec<Vec<u8>> = (0..classes)
        .map(|cls| {
            let mut crng = class_rng(family_seed, cls);
            let mut bits = vec![0u8; side * side];
            let strokes = crng.gen_range(3..6);
            for _ in 0..strokes {
                let x0 = crng.gen_range(0..side);
                let y0 = crng.gen_range(0..side);
                let w = crng.gen_range(2..side / 2);
                let h = crng.gen_range(2..side / 2);
                for y in y0..(y0 + h).min(side) {
                    for x in x0..(x0 + w).min(side) {
                        bits[y * side + x] = 1;
                    }
                }
            }
            pack_bits(&bits, bytes)
        })
        .collect();
    (0..n)
        .map(|_| {
            let cls = rng.gen_range(0..classes);
            flip_noise(&templates[cls], noise, rng)
        })
        .collect()
}

fn pack_bits(bits: &[u8], bytes: usize) -> Vec<u8> {
    let mut out = vec![0u8; bytes];
    for (i, &b) in bits.iter().enumerate() {
        if b != 0 {
            out[i / 8] |= 1 << (7 - i % 8);
        }
    }
    out
}

fn flip_noise<R: Rng>(template: &[u8], p: f64, rng: &mut R) -> Vec<u8> {
    template
        .iter()
        .map(|&byte| {
            let mut b = byte;
            for bit in 0..8 {
                if rng.gen_bool(p) {
                    b ^= 1 << bit;
                }
            }
            b
        })
        .collect()
}

/// Grayscale/packed-color class images: smooth class template bytes
/// plus bounded additive noise.
fn gray_images<R: Rng>(
    n: usize,
    bytes: usize,
    classes: usize,
    family_seed: u64,
    noise_amp: i16,
    rng: &mut R,
) -> Vec<Vec<u8>> {
    let templates: Vec<Vec<u8>> = (0..classes)
        .map(|cls| {
            let mut crng = class_rng(family_seed, cls);
            // Low-frequency template: random walk with momentum.
            let mut value = crng.gen_range(0..256) as i16;
            let mut momentum = 0i16;
            (0..bytes)
                .map(|_| {
                    momentum = (momentum + crng.gen_range(-3..=3)).clamp(-9, 9);
                    value = (value + momentum).clamp(0, 255);
                    value as u8
                })
                .collect()
        })
        .collect();
    (0..n)
        .map(|_| {
            let cls = rng.gen_range(0..classes);
            templates[cls]
                .iter()
                .map(|&b| (b as i16 + rng.gen_range(-noise_amp..=noise_amp)).clamp(0, 255) as u8)
                .collect()
        })
        .collect()
}

/// Access-log records (Amazon Access Samples shape): `[user: 4][resource:
/// 4][group: 4][action: 1][ts: 4][flags: 1][reserved...]`, users and
/// resources drawn zipf-ish (few hot users dominate → clusterable).
fn amazon_access<R: Rng>(n: usize, rng: &mut R) -> Vec<Vec<u8>> {
    let hot_users: Vec<u32> = (0..32).map(|_| rng.gen_range(0..10_000)).collect();
    let hot_resources: Vec<u32> = (0..64).map(|_| rng.gen_range(0..50_000)).collect();
    let mut ts = 1_600_000_000u32;
    (0..n)
        .map(|_| {
            let user = if rng.gen_bool(0.8) {
                hot_users[rng.gen_range(0..hot_users.len())]
            } else {
                rng.gen_range(0..10_000)
            };
            let resource = if rng.gen_bool(0.7) {
                hot_resources[rng.gen_range(0..hot_resources.len())]
            } else {
                rng.gen_range(0..50_000)
            };
            let group = user / 100;
            let action = rng.gen_range(0..4u8);
            ts += rng.gen_range(1..30);
            let mut rec = Vec::with_capacity(32);
            rec.extend_from_slice(&user.to_le_bytes());
            rec.extend_from_slice(&resource.to_le_bytes());
            rec.extend_from_slice(&group.to_le_bytes());
            rec.push(action);
            rec.extend_from_slice(&ts.to_le_bytes());
            rec.push(u8::from(action == 0));
            rec.resize(32, 0);
            rec
        })
        .collect()
}

/// Road-network points: a spatial random walk in (lat, lon, alt),
/// quantized to i32 fixed-point — consecutive points share most of
/// their high-order bytes (3D Road Network, North Jutland shape).
fn road_network<R: Rng>(n: usize, rng: &mut R) -> Vec<Vec<u8>> {
    let mut lat = 57_000_000i64; // micro-degrees, ~North Jutland
    let mut lon = 9_900_000i64;
    let mut alt = 20_000i64; // millimeters
    (0..n)
        .map(|_| {
            lat += rng.gen_range(-500..=500);
            lon += rng.gen_range(-500..=500);
            alt = (alt + rng.gen_range(-200..=200)).max(0);
            let mut rec = Vec::with_capacity(24);
            rec.extend_from_slice(&lat.to_le_bytes());
            rec.extend_from_slice(&lon.to_le_bytes());
            rec.extend_from_slice(&alt.to_le_bytes());
            rec
        })
        .collect()
}

/// Sparse doc-word count rows (PubMed DocWord shape): `vocab` u16
/// counts per row, topic-mixture sparsity (a row touches one topic's
/// word block heavily, the rest barely).
fn pubmed<R: Rng>(n: usize, vocab: usize, rng: &mut R) -> Vec<Vec<u8>> {
    let topics = 8;
    let block = vocab / topics;
    (0..n)
        .map(|_| {
            let topic = rng.gen_range(0..topics);
            let mut counts = vec![0u16; vocab];
            let words = rng.gen_range(20..60);
            for _ in 0..words {
                let idx = if rng.gen_bool(0.85) {
                    topic * block + rng.gen_range(0..block)
                } else {
                    rng.gen_range(0..vocab)
                };
                counts[idx] = counts[idx].saturating_add(1);
            }
            // Pack the first 64 counts as the fixed-width record (the
            // DocWord rows used for placement are fixed-size slices).
            counts[..64].iter().flat_map(|c| c.to_le_bytes()).collect()
        })
        .collect()
}

/// Temporally correlated video frames: a static background with moving
/// bright rectangles (Sherbrooke / AAU CCTV shape). Consecutive frames
/// have small hamming distance; distant frames differ more.
#[derive(Debug)]
pub struct VideoDataset {
    width: usize,
    height: usize,
    background: Vec<u8>,
    objects: Vec<MovingObject>,
}

#[derive(Debug, Clone)]
struct MovingObject {
    x: f32,
    y: f32,
    dx: f32,
    dy: f32,
    w: usize,
    h: usize,
    brightness: u8,
}

impl VideoDataset {
    /// A scene of `width × height` grayscale pixels with `objects`
    /// moving rectangles.
    pub fn new<R: Rng>(width: usize, height: usize, objects: usize, rng: &mut R) -> Self {
        // Static structured background, unique per scene: a smooth
        // random walk (each camera watches a different intersection, so
        // two scenes must differ in most pixels).
        let mut level = rng.gen_range(40..200) as i16;
        let mut momentum = 0i16;
        let background: Vec<u8> = (0..width * height)
            .map(|_| {
                momentum = (momentum + rng.gen_range(-2..=2)).clamp(-6, 6);
                level = (level + momentum).clamp(0, 255);
                level as u8
            })
            .collect();
        let objects = (0..objects)
            .map(|_| MovingObject {
                x: rng.gen_range(0.0..width as f32),
                y: rng.gen_range(0.0..height as f32),
                dx: rng.gen_range(-2.0..2.0),
                dy: rng.gen_range(-1.5..1.5),
                w: rng.gen_range(2..(width / 4).max(3)),
                h: rng.gen_range(2..(height / 4).max(3)),
                brightness: rng.gen_range(180..=255),
            })
            .collect();
        Self {
            width,
            height,
            background,
            objects,
        }
    }

    /// Bytes per frame.
    pub fn frame_bytes(&self) -> usize {
        self.width * self.height
    }

    /// Render frame `t`.
    pub fn frame(&self, t: usize) -> Vec<u8> {
        let mut frame = self.background.clone();
        for obj in &self.objects {
            // Bounce the object inside the scene.
            let period_x = 2.0 * (self.width as f32 - obj.w as f32).max(1.0);
            let period_y = 2.0 * (self.height as f32 - obj.h as f32).max(1.0);
            let pos = |start: f32, vel: f32, period: f32| -> f32 {
                let raw = (start + vel * t as f32).rem_euclid(period);
                if raw < period / 2.0 {
                    raw
                } else {
                    period - raw
                }
            };
            let ox = pos(obj.x, obj.dx, period_x) as usize;
            let oy = pos(obj.y, obj.dy, period_y) as usize;
            for y in oy..(oy + obj.h).min(self.height) {
                for x in ox..(ox + obj.w).min(self.width) {
                    frame[y * self.width + x] = obj.brightness;
                }
            }
        }
        frame
    }

    /// Render frames `[start, start + n)`.
    pub fn frames(&self, start: usize, n: usize) -> Vec<Vec<u8>> {
        (start..start + n).map(|t| self.frame(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Local hamming (avoid a cross-crate dev-dependency).
    fn hamming(a: &[u8], b: &[u8]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x ^ y).count_ones() as u64)
            .sum()
    }

    fn rng() -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn sizes_match_declared() {
        let mut r = rng();
        for kind in DatasetKind::ALL {
            let items = kind.generate(5, &mut r);
            assert_eq!(items.len(), 5);
            for item in &items {
                assert_eq!(item.len(), kind.item_bytes(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn generate_sized_resizes() {
        let mut r = rng();
        let items = DatasetKind::MnistLike.generate_sized(3, 256, &mut r);
        assert!(items.iter().all(|i| i.len() == 256));
        let small = DatasetKind::CifarLike.generate_sized(3, 64, &mut r);
        assert!(small.iter().all(|i| i.len() == 64));
    }

    #[test]
    fn images_cluster_within_class() {
        // Same-class items must be much closer than cross-class pairs
        // on average: that is the property the placement model exploits.
        let mut r = rng();
        let items = DatasetKind::MnistLike.generate(400, &mut r);
        // Estimate: nearest-neighbour distance should be far below the
        // distance to a random other item.
        let probe = &items[0];
        let mut dists: Vec<u64> = items[1..].iter().map(|i| hamming(probe, i)).collect();
        dists.sort_unstable();
        let nearest = dists[0] as f64;
        let median = dists[dists.len() / 2] as f64;
        assert!(
            nearest * 2.0 < median,
            "no cluster structure: nearest={nearest} median={median}"
        );
    }

    #[test]
    fn mnist_and_fashion_templates_differ() {
        let mut r = rng();
        let m = DatasetKind::MnistLike.generate(50, &mut r);
        let f = DatasetKind::FashionLike.generate(50, &mut r);
        let cross: u64 = m.iter().zip(&f).map(|(a, b)| hamming(a, b)).sum();
        let within: u64 = m.windows(2).map(|w| hamming(&w[0], &w[1])).sum();
        assert!(cross > within / 2, "families indistinguishable");
    }

    #[test]
    fn road_network_is_temporally_smooth() {
        let mut r = rng();
        let pts = DatasetKind::RoadNetwork.generate(100, &mut r);
        let adjacent: u64 = pts.windows(2).map(|w| hamming(&w[0], &w[1])).sum();
        let far: u64 = (0..99)
            .map(|i| hamming(&pts[i], &pts[(i + 50) % 100]))
            .sum();
        assert!(adjacent < far, "adjacent={adjacent} far={far}");
    }

    #[test]
    fn video_frames_temporally_correlated() {
        let mut r = rng();
        let video = VideoDataset::new(80, 60, 3, &mut r);
        let f0 = video.frame(0);
        let f1 = video.frame(1);
        let f50 = video.frame(50);
        let near = hamming(&f0, &f1);
        let far = hamming(&f0, &f50);
        assert!(near < far, "near={near} far={far}");
        assert_eq!(f0.len(), video.frame_bytes());
        // Background dominates: consecutive frames differ in a small
        // fraction of bits.
        assert!(
            (near as f64) < 0.1 * (f0.len() * 8) as f64,
            "frames not background-stable: {near}"
        );
    }

    #[test]
    fn video_objects_actually_move() {
        let mut r = rng();
        let video = VideoDataset::new(64, 48, 2, &mut r);
        let frames = video.frames(0, 10);
        assert_eq!(frames.len(), 10);
        let moved = frames.windows(2).any(|w| w[0] != w[1]);
        assert!(moved, "static video");
    }

    #[test]
    fn pubmed_rows_sparse() {
        let mut r = rng();
        let rows = DatasetKind::PubMed.generate(20, &mut r);
        for row in &rows {
            let zeros = row.iter().filter(|&&b| b == 0).count();
            assert!(zeros * 2 > row.len(), "row not sparse");
        }
    }

    #[test]
    fn amazon_has_hot_users() {
        let mut r = rng();
        let recs = amazon_access(2000, &mut r);
        let mut users: std::collections::HashMap<u32, usize> = Default::default();
        for rec in &recs {
            let user = u32::from_le_bytes(rec[..4].try_into().unwrap());
            *users.entry(user).or_default() += 1;
        }
        let max = *users.values().max().unwrap();
        assert!(max > 20, "no hot user: {max}");
    }
}
