//! # e2nvm-workloads — workload and dataset generators
//!
//! * [`ycsb`] — a native YCSB-compatible generator (core workloads A–F
//!   with the standard mixes and zipfian/latest distributions).
//! * [`zipf`] — the underlying request distributions.
//! * [`datasets`] — synthetic datasets structurally matched to the
//!   paper's evaluation data (MNIST/Fashion/CIFAR/ImageNet-like images,
//!   CCTV-like video, Amazon-Access-like logs, road-network points,
//!   PubMed-like sparse rows). See DESIGN.md §2 for the substitution
//!   rationale.

pub mod datasets;
pub mod ycsb;
pub mod zipf;

pub use datasets::{DatasetKind, VideoDataset};
pub use ycsb::{Distribution, Mix, Operation, Ycsb};
pub use zipf::{scramble, Latest, Zipfian};
