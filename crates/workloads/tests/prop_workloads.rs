//! Property tests for the workload generators: distribution bounds,
//! YCSB mix validity, and dataset shape guarantees.

use e2nvm_workloads::{scramble, DatasetKind, Operation, VideoDataset, Ycsb, Zipfian};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zipfian samples always land in range for any n and theta.
    #[test]
    fn zipfian_in_range(n in 1usize..5000, theta in 0.01f64..0.999, seed in 0u64..500) {
        let z = Zipfian::with_theta(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Growing the item space keeps samples in the new range.
    #[test]
    fn zipfian_grow_in_range(n in 2usize..100, extra in 1usize..1000, seed in 0u64..100) {
        let mut z = Zipfian::new(n);
        z.grow(n + extra);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n + extra);
        }
    }

    /// Scramble is injective on contiguous ranges (no key collisions in
    /// the loaded set).
    #[test]
    fn scramble_injective(start in 0u64..1_000_000, len in 1usize..2000) {
        let mut keys: Vec<u64> = (start..start + len as u64).map(scramble).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), len);
    }

    /// Every YCSB workload generates only operations its mix allows,
    /// with keys drawn from the loaded or inserted set.
    #[test]
    #[allow(clippy::type_complexity)]
    fn ycsb_ops_respect_mix(records in 10u64..500, seed in 0u64..200) {
        let specs: [(char, fn(u64, usize, u64) -> Ycsb, &[&str]); 6] = [
            ('A', Ycsb::a, &["read", "update"]),
            ('B', Ycsb::b, &["read", "update"]),
            ('C', Ycsb::c, &["read"]),
            ('D', Ycsb::d, &["read", "insert"]),
            ('E', Ycsb::e, &["scan", "insert"]),
            ('F', Ycsb::f, &["read", "rmw"]),
        ];
        for (name, make, allowed) in specs {
            let mut w = make(records, 16, seed);
            for op in w.take_ops(100) {
                let kind = match op {
                    Operation::Read(_) => "read",
                    Operation::Update(..) => "update",
                    Operation::Insert(..) => "insert",
                    Operation::Scan(..) => "scan",
                    Operation::ReadModifyWrite(..) => "rmw",
                };
                prop_assert!(
                    allowed.contains(&kind),
                    "workload {name} generated {kind}"
                );
            }
        }
    }

    /// Dataset generators honor requested counts and sizes for any
    /// (n, size) combination.
    #[test]
    fn datasets_sized_exactly(n in 1usize..24, bytes in 8usize..512, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in DatasetKind::ALL {
            let items = kind.generate_sized(n, bytes, &mut rng);
            prop_assert_eq!(items.len(), n, "{}", kind.name());
            for item in &items {
                prop_assert_eq!(item.len(), bytes, "{}", kind.name());
            }
        }
    }

    /// Video frames are deterministic per timestamp and sized to the
    /// scene.
    #[test]
    fn video_frames_deterministic(
        w in 8usize..40,
        h in 8usize..40,
        objects in 1usize..4,
        t in 0usize..500,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let video = VideoDataset::new(w, h, objects, &mut rng);
        let a = video.frame(t);
        let b = video.frame(t);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), w * h);
    }
}
