//! Crash-recovery tests: populate a structure, "crash" by discarding
//! every piece of DRAM state except the durable allocator metadata (the
//! node list), recover from the NVM images, and verify the logical
//! contents — including that recovery performs **no writes**.

use e2nvm_kvstore::{BPlusTree, DirectNodeStore, FpTree, NodeStore, NvmKvStore, PathHashing};
use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn store(segments: usize, seg_bytes: usize) -> DirectNodeStore {
    let dev = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(segments)
            .build()
            .unwrap(),
    );
    DirectNodeStore::new(MemoryController::without_wear_leveling(dev))
}

fn populate(kv: &mut dyn NvmKvStore, seed: u64, ops: usize) -> BTreeMap<u64, Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shadow = BTreeMap::new();
    for _ in 0..ops {
        let key = rng.gen_range(0..96u64);
        if rng.gen_bool(0.8) {
            let value: Vec<u8> = (0..rng.gen_range(4..14)).map(|_| rng.gen()).collect();
            kv.put(key, &value).unwrap();
            shadow.insert(key, value);
        } else {
            let existed = kv.delete(key).unwrap();
            assert_eq!(existed, shadow.remove(&key).is_some());
        }
    }
    shadow
}

fn verify(kv: &mut dyn NvmKvStore, shadow: &BTreeMap<u64, Vec<u8>>) {
    for key in 0..96u64 {
        assert_eq!(
            kv.get(key).unwrap().as_ref(),
            shadow.get(&key),
            "key {key} after recovery"
        );
    }
    let scanned = kv.scan(0, u64::MAX).unwrap();
    let expect: Vec<(u64, Vec<u8>)> = shadow.iter().map(|(k, v)| (*k, v.clone())).collect();
    assert_eq!(scanned, expect, "scan after recovery");
}

#[test]
fn btree_recovers_from_leaf_images() {
    let mut tree = BPlusTree::new(store(128, 128));
    let shadow = populate(&mut tree, 1, 500);
    // "Crash": keep only the node list + the store (NVM contents).
    let nodes = tree.nodes();
    let store = tree.into_store();
    let writes_before = store.stats().writes;
    let mut recovered = BPlusTree::recover(store, &nodes).unwrap();
    verify(&mut recovered, &shadow);
    // Recovery performs only reads (plus frees of empty leaves).
    assert_eq!(recovered.stats().writes, writes_before);
}

#[test]
fn fptree_recovers_from_bitmaps_and_fingerprints() {
    let mut tree = FpTree::new(store(128, 256), 16);
    let shadow = populate(&mut tree, 2, 500);
    let nodes = tree.nodes();
    let store = tree.into_store();
    let writes_before = store.stats().writes;
    let mut recovered = FpTree::recover(store, &nodes, 16).unwrap();
    verify(&mut recovered, &shadow);
    assert_eq!(recovered.stats().writes, writes_before);
}

#[test]
fn path_hashing_recovers_from_cell_flags() {
    let mut table = PathHashing::new(store(128, 256), 256, 4, 16).unwrap();
    let shadow = populate(&mut table, 3, 400);
    let nodes = table.nodes().to_vec();
    let store = table.into_store();
    let writes_before = store.stats().writes;
    let mut recovered = PathHashing::recover(store, nodes, 256, 4, 16).unwrap();
    assert_eq!(recovered.len(), shadow.len());
    verify(&mut recovered, &shadow);
    assert_eq!(recovered.stats().writes, writes_before);
}

#[test]
fn recovery_then_writes_continue_normally() {
    let mut tree = BPlusTree::new(store(128, 128));
    let mut shadow = populate(&mut tree, 4, 300);
    let nodes = tree.nodes();
    let mut recovered = BPlusTree::recover(tree.into_store(), &nodes).unwrap();
    // Continue mutating after recovery.
    recovered.put(1000, b"post-crash").unwrap();
    shadow.insert(1000, b"post-crash".to_vec());
    recovered.delete(*shadow.keys().next().unwrap()).unwrap();
    let first = *shadow.keys().next().unwrap();
    shadow.remove(&first);
    assert_eq!(
        recovered.get(1000).unwrap().unwrap(),
        b"post-crash".to_vec()
    );
    assert_eq!(recovered.scan(0, u64::MAX).unwrap().len(), shadow.len());
}
