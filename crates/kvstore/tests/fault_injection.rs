//! Graceful-degradation acceptance test: a YCSB-style workload over a
//! [`ShardedE2KvStore`] whose device injects seeded endurance faults
//! must survive at least one permanent segment retirement with zero
//! lost or corrupted values — capacity shrinks, correctness does not.

use e2nvm_core::{E2Config, ShardedEngine};
use e2nvm_kvstore::{NvmKvStore, ShardedE2KvStore, StoreError};
use e2nvm_sim::{DeviceConfig, FaultConfig, LogicalSegment, MemoryController};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A sharded store over a fault-injecting device, with each shard
/// device wrapped by `make` (pass-through or wear-leveling).
/// `endurance_bits` is the mean per-segment endurance budget in
/// programmed bits.
fn faulty_store_with(
    num_shards: usize,
    segments: usize,
    seg_bytes: usize,
    endurance_bits: u64,
    transient_rate: f64,
    make: impl Fn(e2nvm_sim::NvmDevice) -> MemoryController,
) -> ShardedE2KvStore {
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(seg_bytes)
        .num_segments(segments)
        .fault(FaultConfig {
            seed: 0xFA_57,
            endurance_bits,
            endurance_shape: 3.0,
            transient_rate,
        })
        .build()
        .unwrap();
    let cfg = E2Config::builder()
        .fast(seg_bytes, 2)
        .pretrain_epochs(5)
        .joint_epochs(1)
        .padding_type(e2nvm_core::PaddingType::Zero)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    let controllers: Vec<MemoryController> =
        e2nvm_sim::partition_controllers_with(&dev_cfg, num_shards, make)
            .unwrap()
            .into_iter()
            .map(|(_, mut mc)| {
                for i in 0..mc.num_segments() {
                    let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
                    let content: Vec<u8> = (0..seg_bytes)
                        .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                        .collect();
                    mc.seed(LogicalSegment(i), &content).unwrap();
                }
                mc
            })
            .collect();
    ShardedE2KvStore::new(ShardedEngine::train(controllers, &cfg).unwrap())
}

/// Pass-through controllers (no wear leveling) — the original shape.
fn faulty_store(
    num_shards: usize,
    segments: usize,
    seg_bytes: usize,
    endurance_bits: u64,
    transient_rate: f64,
) -> ShardedE2KvStore {
    faulty_store_with(
        num_shards,
        segments,
        seg_bytes,
        endurance_bits,
        transient_rate,
        MemoryController::without_wear_leveling,
    )
}

/// YCSB-A-flavoured mix (50% update, 40% read, 10% delete) against a
/// shadow map. Dense random values burn endurance; every read is
/// verified byte-for-byte, so a single corrupted or lost value fails
/// the test.
fn ycsb_against_shadow(
    s: &mut ShardedE2KvStore,
    ops: usize,
    value_len: usize,
    seed: u64,
) -> Result<(), StoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for op in 0..ops {
        let key = rng.gen_range(0..48u64);
        match rng.gen_range(0..10) {
            0..=4 => {
                let value: Vec<u8> = (0..value_len).map(|_| rng.gen()).collect();
                s.put(key, &value)?;
                shadow.insert(key, value);
            }
            5..=8 => {
                let got = s.get(key)?;
                assert_eq!(
                    got.as_ref(),
                    shadow.get(&key),
                    "op {op}: get({key}) diverged from shadow"
                );
            }
            _ => {
                let existed = s.delete(key)?;
                assert_eq!(existed, shadow.remove(&key).is_some(), "op {op}");
            }
        }
    }
    // Full audit: every surviving key reads back exactly.
    for (key, value) in &shadow {
        assert_eq!(
            s.get(*key)?.as_deref(),
            Some(value.as_slice()),
            "final audit: key {key} lost or corrupted"
        );
    }
    Ok(())
}

#[test]
fn ycsb_survives_segment_retirement_without_data_loss() {
    // ~375 puts per shard each programming ~240 bits puts ~90k bits of
    // wear through every shard — a dozen segments cross their ~8k-bit
    // Weibull limits mid-workload, yet most of the pool survives to
    // finish it.
    let mut s = faulty_store(4, 192, 64, 8_000, 0.0);
    ycsb_against_shadow(&mut s, 3_000, 60, 41).unwrap();
    assert!(
        s.retired_count() >= 1,
        "workload never wore a segment out — endurance budget too high for the test"
    );
}

#[test]
fn wear_leveled_ycsb_quarantines_dying_segments_by_physical_id() {
    // Same endurance pressure as the pass-through test, but every shard
    // rotates under start-gap (ψ=4). When a write kills a segment, the
    // engine retires the *logical* id from its pool and the controller
    // quarantines the *physical* slot the write actually hit — the slot
    // the device wore out, not whatever the logical id maps to later.
    let mut s = faulty_store_with(4, 192, 64, 8_000, 0.0, |dev| {
        MemoryController::with_start_gap(dev, 4)
    });
    ycsb_against_shadow(&mut s, 3_000, 60, 41).unwrap();
    assert!(
        s.retired_count() >= 1,
        "workload never wore a segment out — endurance budget too high for the test"
    );
    // Dual retirement: one quarantined physical slot per retired
    // logical id.
    assert_eq!(s.retired_physical_count(), s.retired_count());
    let mut audited = 0usize;
    for i in 0..s.engine().num_shards() {
        s.engine().with_shard_engine(i, |e| {
            let mc = e.controller();
            assert!(mc.remap_is_consistent());
            for p in mc.retired_physical() {
                assert!(
                    mc.device().is_worn_out(p),
                    "quarantined {p} but the device says it is healthy — \
                     the wrong (logical-indexed?) slot was retired"
                );
                audited += 1;
            }
        });
    }
    assert_eq!(audited, s.retired_physical_count());
}

#[test]
fn ycsb_with_transient_faults_stays_consistent() {
    // Unreachable endurance, but 10% of writes fail verify and are
    // retried by the engine; the store must behave as if faults were
    // absent.
    let mut s = faulty_store(4, 192, 64, u64::MAX >> 8, 0.10);
    ycsb_against_shadow(&mut s, 800, 60, 43).unwrap();
    assert_eq!(s.retired_count(), 0);
}

#[test]
fn depletion_surfaces_degraded_error_and_preserves_data() {
    // Tiny pool, tiny endurance: run until the pool is gone, then check
    // that the error names degraded mode and old data is intact.
    let mut s = faulty_store(1, 12, 64, 6_000, 0.0);
    let mut rng = StdRng::seed_from_u64(47);
    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut degraded = None;
    for _ in 0..4_000 {
        let key = rng.gen_range(0..4u64);
        let value: Vec<u8> = (0..60).map(|_| rng.gen()).collect();
        match s.put(key, &value) {
            Ok(()) => {
                shadow.insert(key, value);
            }
            Err(e) => {
                degraded = Some(e);
                break;
            }
        }
    }
    match degraded {
        Some(StoreError::Degraded { retired }) => {
            assert!(retired >= 1);
            assert_eq!(retired, s.retired_count());
        }
        other => panic!("expected StoreError::Degraded, got {other:?}"),
    }
    for (key, value) in &shadow {
        assert_eq!(
            s.get(*key).unwrap().as_deref(),
            Some(value.as_slice()),
            "degraded mode lost key {key}"
        );
    }
}
