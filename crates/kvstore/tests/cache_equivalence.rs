//! Observational-equivalence property test for the read-through cache:
//! a [`CachedKvStore`] wrapping an [`E2KvStore`] must be
//! indistinguishable from the bare store under any interleaving of
//! puts, gets, deletes, batch ops, and scans — including when the
//! cache budget is tiny enough that the CLOCK hand evicts constantly.
//!
//! The two twins are built from identical seeds, so even their error
//! behaviour (e.g. out-of-space under an overfilled pool) must match
//! exactly, not just their happy paths.

use e2nvm_core::{E2Config, E2Engine};
use e2nvm_kvstore::{CacheConfig, CachedKvStore, E2KvStore, NvmKvStore};
use e2nvm_sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One logical store operation, as generated traffic.
#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Get(u64),
    Delete(u64),
    PutMany(Vec<(u64, Vec<u8>)>),
    GetMany(Vec<u64>),
    Scan(u64, u64),
    ScanLimit(u64, u64, usize),
}

/// Keys from a small universe (so gets hit, deletes race with fills,
/// and the cache keeps churning the same shard slots) and short values
/// (so the tiny store geometry below doesn't just fill up instantly).
fn arb_op() -> impl Strategy<Value = Op> {
    let value = || proptest::collection::vec(any::<u8>(), 0..24);
    prop_oneof![
        (0u64..12, value()).prop_map(|(k, v)| Op::Put(k, v)),
        (0u64..12).prop_map(Op::Get),
        (0u64..12).prop_map(Op::Delete),
        proptest::collection::vec((0u64..12, value()), 0..5).prop_map(Op::PutMany),
        proptest::collection::vec(0u64..12, 0..6).prop_map(Op::GetMany),
        (0u64..12, 0u64..12).prop_map(|(lo, hi)| Op::Scan(lo.min(hi), lo.max(hi))),
        (0u64..12, 0u64..12, 0usize..4).prop_map(|(lo, hi, limit)| Op::ScanLimit(
            lo.min(hi),
            lo.max(hi),
            limit
        )),
    ]
}

/// A small trained E2 store; every call with the same arguments builds
/// an identical twin (seeded device content, seeded engine).
fn twin_store(segments: usize, seg_bytes: usize) -> E2KvStore {
    let dev = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(segments)
            .build()
            .unwrap(),
    );
    let cfg = E2Config::builder()
        .fast(seg_bytes, 2)
        .pretrain_epochs(4)
        .joint_epochs(1)
        .padding_type(e2nvm_core::PaddingType::Zero)
        .build()
        .unwrap();
    let mut engine = E2Engine::new(MemoryController::without_wear_leveling(dev), cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    for i in 0..segments {
        let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
        let content: Vec<u8> = (0..seg_bytes)
            .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
            .collect();
        engine
            .controller_mut()
            .seed(LogicalSegment(i), &content)
            .unwrap();
    }
    engine.train().unwrap();
    E2KvStore::new(engine)
}

/// Errors compared by display text: the twins run identical engines,
/// so even failure *messages* must line up.
fn show<T: std::fmt::Debug>(r: Result<T, e2nvm_kvstore::StoreError>) -> String {
    match r {
        Ok(v) => format!("Ok({v:?})"),
        Err(e) => format!("Err({e})"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every operation's result — values, not-found, and errors alike —
    /// is identical with and without the cache in front, and so is the
    /// final full-range scan of surviving state.
    #[test]
    fn cached_store_is_observationally_equivalent(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let mut bare = twin_store(24, 64);
        // 256 bytes over 2 shards: with ~48 B of bookkeeping per entry
        // the budget holds only a couple of values per shard, so any
        // sustained traffic forces CLOCK evictions.
        let cache_cfg = CacheConfig::builder()
            .capacity_bytes(256)
            .shards(2)
            .build()
            .unwrap();
        let mut cached = CachedKvStore::new(twin_store(24, 64), cache_cfg);

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Put(key, value) => {
                    prop_assert_eq!(
                        show(bare.put(*key, value)),
                        show(cached.put(*key, value)),
                        "put #{} diverged", i
                    );
                }
                Op::Get(key) => {
                    prop_assert_eq!(
                        show(bare.get(*key)),
                        show(cached.get(*key)),
                        "get #{} diverged", i
                    );
                }
                Op::Delete(key) => {
                    prop_assert_eq!(
                        show(bare.delete(*key)),
                        show(cached.delete(*key)),
                        "delete #{} diverged", i
                    );
                }
                Op::PutMany(pairs) => {
                    let slices: Vec<(u64, &[u8])> =
                        pairs.iter().map(|(k, v)| (*k, v.as_slice())).collect();
                    let lhs: Vec<String> =
                        bare.put_many(&slices).into_iter().map(show).collect();
                    let rhs: Vec<String> =
                        cached.put_many(&slices).into_iter().map(show).collect();
                    prop_assert_eq!(lhs, rhs, "put_many #{} diverged", i);
                }
                Op::GetMany(keys) => {
                    prop_assert_eq!(
                        show(bare.get_many(keys)),
                        show(cached.get_many(keys)),
                        "get_many #{} diverged", i
                    );
                }
                Op::Scan(lo, hi) => {
                    prop_assert_eq!(
                        show(bare.scan(*lo, *hi)),
                        show(cached.scan(*lo, *hi)),
                        "scan #{} diverged", i
                    );
                }
                Op::ScanLimit(lo, hi, limit) => {
                    prop_assert_eq!(
                        show(bare.scan_limit(*lo, *hi, *limit)),
                        show(cached.scan_limit(*lo, *hi, *limit)),
                        "scan_limit #{} diverged", i
                    );
                }
            }
        }

        // Final state: everything still present reads back the same
        // through both fronts.
        prop_assert_eq!(show(bare.scan(0, u64::MAX)), show(cached.scan(0, u64::MAX)));
        prop_assert_eq!(bare.len(), cached.inner().len());
    }
}
