//! The paper's Figure 3 system: a persistent key-value store on hybrid
//! DRAM-NVM built on E2-NVM — a DRAM **red-black tree** index (the
//! "RB-Tree.put(D, A)" of Algorithm 1) over values placed by the
//! [`E2Engine`].

use crate::rbtree::RbTree;
use crate::store::{Result, StoreError};
use crate::telemetry::StoreTelemetry;
use crate::traits::NvmKvStore;
use e2nvm_core::{Batch, BatchAccumulator, E2Config, E2Engine, E2Error, ShardedEngine};
use e2nvm_persist::{
    replay_and_truncate, FlushPolicy, PersistTelemetry, PersistenceConfig, ShardState,
    StoreSnapshot, Wal, WalOp, WalSyncer,
};
use e2nvm_sim::{LogicalSegment, MemoryController};
use e2nvm_telemetry::TelemetryRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    seg: LogicalSegment,
    off: usize,
    len: usize,
}

impl Default for Loc {
    fn default() -> Self {
        Self {
            seg: LogicalSegment(usize::MAX),
            off: 0,
            len: 0,
        }
    }
}

/// The E2-NVM-backed key-value store.
pub struct E2KvStore {
    engine: E2Engine,
    index: RbTree<Loc>,
    /// Live-entry counts for segments shared by a packed
    /// [`NvmKvStore::put_many`] batch; absent segments hold exactly one
    /// entry. A shared segment is recycled only when its count hits 0.
    live: HashMap<LogicalSegment, usize>,
    telemetry: StoreTelemetry,
}

impl E2KvStore {
    /// Build over a *trained* engine.
    ///
    /// # Panics
    /// Panics if the engine has not been trained.
    pub fn new(engine: E2Engine) -> Self {
        assert!(engine.is_trained(), "E2KvStore: engine must be trained");
        Self {
            engine,
            index: RbTree::new(),
            live: HashMap::new(),
            telemetry: StoreTelemetry::disconnected(),
        }
    }

    /// Drop one live reference to the segment behind a displaced index
    /// entry; recycle it once no entry points there any more.
    fn release_loc(&mut self, loc: Loc) -> Result<()> {
        match self.live.get_mut(&loc.seg) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    self.live.remove(&loc.seg);
                    self.engine.recycle_segment(loc.seg)?;
                }
            }
            None => self.engine.recycle_segment(loc.seg)?,
        }
        Ok(())
    }

    /// Commit one emitted batch; on placement failure, fail every
    /// pending pair's result slot. Clears `pending` either way.
    fn commit_pending(
        &mut self,
        batch: &Batch,
        pending: &mut Vec<usize>,
        results: &mut [Result<()>],
    ) {
        if let Err(e) = self.commit_batch(batch) {
            for &i in pending.iter() {
                results[i] = Err(e.clone());
            }
        }
        pending.clear();
    }

    /// Place one emitted batch on a segment and index every item.
    fn commit_batch(&mut self, batch: &Batch) -> Result<()> {
        let (seg, _report) = self.engine.place_value(&batch.data)?;
        // Count the whole batch up front so an intra-batch duplicate
        // release cannot recycle the segment under later items.
        self.live.insert(seg, batch.items.len());
        for &(key, off, len) in &batch.items {
            if let Some(old) = self.index.insert(key, Loc { seg, off, len }) {
                self.release_loc(old)?;
            }
        }
        Ok(())
    }

    /// Register this store's KV-op metrics — and the wrapped engine's
    /// and device's — on `registry`.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry) {
        self.engine.attach_telemetry(registry, 0);
        self.telemetry = StoreTelemetry::register(registry, "e2");
    }

    /// Borrow the engine (retraining, stats, wear inspection).
    pub fn engine_mut(&mut self) -> &mut E2Engine {
        &mut self.engine
    }

    /// Segments permanently retired by wear-out (degraded mode).
    pub fn retired_count(&self) -> usize {
        self.engine.retired_count()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

impl NvmKvStore for E2KvStore {
    fn name(&self) -> &'static str {
        "E2-NVM KV"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        // Timed explicitly (not via the drop-guard timer) because
        // release_loc needs `&mut self` while a guard would hold the
        // telemetry borrow.
        let t0 = crate::telemetry::now_if_enabled();
        self.telemetry.puts.inc();
        // Algorithm 1: predict -> pop address -> differential write ->
        // index update.
        let (seg, _report) = self.engine.place_value(value)?;
        if let Some(old) = self.index.insert(
            key,
            Loc {
                seg,
                off: 0,
                len: value.len(),
            },
        ) {
            self.release_loc(old)?;
        }
        if let Some(t0) = t0 {
            self.telemetry
                .put_latency_ns
                .observe(t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn put_many(&mut self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        self.telemetry.puts.add(pairs.len() as u64);
        let seg_bytes = self.engine.config().segment_bytes;
        let mut results: Vec<Result<()>> = (0..pairs.len()).map(|_| Ok(())).collect();
        let mut acc = BatchAccumulator::new(seg_bytes);
        let mut pending: Vec<usize> = Vec::new();
        for (i, &(key, value)) in pairs.iter().enumerate() {
            if value.len() > seg_bytes {
                results[i] = Err(StoreError::from(E2Error::ValueTooLarge {
                    len: value.len(),
                    segment_bytes: seg_bytes,
                }));
                continue;
            }
            if value.is_empty() {
                // The accumulator cannot carry zero-length payloads;
                // flush first (order matters for duplicate keys), then
                // place the empty value on its own segment.
                if let Some(batch) = acc.flush() {
                    self.commit_pending(&batch, &mut pending, &mut results);
                }
                results[i] = match self.engine.place_value(value) {
                    Ok((seg, _report)) => match self.index.insert(
                        key,
                        Loc {
                            seg,
                            off: 0,
                            len: 0,
                        },
                    ) {
                        Some(old) => self.release_loc(old),
                        None => Ok(()),
                    },
                    Err(e) => Err(e.into()),
                };
                continue;
            }
            if let Some(batch) = acc.push(key, value) {
                self.commit_pending(&batch, &mut pending, &mut results);
            }
            pending.push(i);
        }
        if let Some(batch) = acc.flush() {
            self.commit_pending(&batch, &mut pending, &mut results);
        }
        results
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let _timer = self.telemetry.get_latency_ns.start_timer();
        self.telemetry.gets.inc();
        let Some(loc) = self.index.get(key).copied() else {
            return Ok(None);
        };
        let data = self.engine.controller_mut().read(loc.seg)?;
        Ok(Some(data[loc.off..loc.off + loc.len].to_vec()))
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        self.telemetry.deletes.inc();
        // Algorithm 2: index lookup -> flag reset (DRAM) -> recycle the
        // address through the encoder back into the DAP.
        let Some(loc) = self.index.remove(key) else {
            return Ok(false);
        };
        self.release_loc(loc)?;
        Ok(true)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.telemetry.scans.inc();
        let locs: Vec<(u64, Loc)> = self
            .index
            .range(lo, hi)
            .into_iter()
            .map(|(k, loc)| (k, *loc))
            .collect();
        locs.into_iter()
            .map(|(k, loc)| {
                let data = self.engine.controller_mut().read(loc.seg)?;
                Ok((k, data[loc.off..loc.off + loc.len].to_vec()))
            })
            .collect()
    }

    fn scan_limit(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>> {
        self.telemetry.scans.inc();
        // Early-stopped index walk: a small page over a huge range
        // costs O(limit + log n), which keeps the server's paged
        // streaming SCAN from re-materializing the whole range per page.
        let locs: Vec<(u64, Loc)> = self
            .index
            .range_limit(lo, hi, limit)
            .into_iter()
            .map(|(k, loc)| (k, *loc))
            .collect();
        locs.into_iter()
            .map(|(k, loc)| {
                let data = self.engine.controller_mut().read(loc.seg)?;
                Ok((k, data[loc.off..loc.off + loc.len].to_vec()))
            })
            .collect()
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.engine.device_stats().clone()
    }

    fn reset_stats(&mut self) {
        self.engine.reset_device_stats();
    }

    fn telemetry(&self) -> Option<&TelemetryRegistry> {
        self.telemetry.registry()
    }
}

/// The attached persistence layer of a [`ShardedE2KvStore`]: one WAL
/// per shard plus snapshot-trigger state. Shared by clones.
struct PersistState {
    cfg: PersistenceConfig,
    /// Per-shard WALs. **Lock ordering**: a mutation takes its shard's
    /// WAL lock *first* and holds it *across* the engine apply, so WAL
    /// record order always equals apply order within a shard. The
    /// snapshot path takes every WAL lock (in shard order) and then each
    /// engine lock — the same wal-then-engine order, so no cycle.
    wals: Vec<Mutex<Wal>>,
    /// Acked mutations since the last snapshot (drives
    /// [`PersistenceConfig::snapshot_every_ops`]).
    ops_since_snapshot: AtomicU64,
    telemetry: PersistTelemetry,
    /// Background fsync thread for `EveryN` policies (`None`
    /// otherwise). Declared after `wals` so the WALs' sync ports drop
    /// first and the syncer's drop can drain and join.
    _syncer: Option<WalSyncer>,
}

impl std::fmt::Debug for PersistState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistState")
            .field("data_dir", &self.cfg.data_dir)
            .field("flush_policy", &self.cfg.flush_policy)
            .field("wals", &self.wals.len())
            .finish()
    }
}

/// Spawn the store's background fsync thread when the policy can use
/// it ([`FlushPolicy::EveryN`]); `EveryAppend` must sync inline and
/// `OsOnly` never syncs, so neither gets a thread.
fn spawn_syncer(policy: FlushPolicy, telemetry: &PersistTelemetry) -> Result<Option<WalSyncer>> {
    match policy {
        FlushPolicy::EveryN(_) => WalSyncer::spawn(telemetry.clone())
            .map(Some)
            .map_err(|e| StoreError::Persistence(format!("spawn wal syncer: {e}"))),
        FlushPolicy::EveryAppend | FlushPolicy::OsOnly => Ok(None),
    }
}

/// Attach the store's syncer port (if any) to a freshly opened WAL,
/// keyed by shard index so the syncer can coalesce per log.
fn attach_syncer(wal: Wal, shard: usize, syncer: &Option<WalSyncer>) -> Wal {
    match syncer {
        Some(s) => wal.with_syncer(s.port(shard as u64)),
        None => wal,
    }
}

/// A point-in-time summary of a store's segment wear, cheap enough to
/// poll every few hundred milliseconds: live keys plus the three pool
/// counters whose trajectory is the endurance story (free shrinking,
/// retired growing, total constant).
///
/// This is the body of the wire protocol's HEALTH frame and the signal
/// the cluster layer's wear-driven failover acts on — a server whose
/// [`wear_fraction`](WearSummary::wear_fraction) crosses the drain
/// threshold gets its traffic routed to replicas *before* the pool
/// depletes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearSummary {
    /// Live keys in the store.
    pub keys: u64,
    /// Free segments still available for placement.
    pub free_segments: u64,
    /// Logical segments permanently retired by wear-out (pool
    /// shrinkage, as the placement layer sees it).
    pub retired_segments: u64,
    /// Physical slots quarantined by the memory controllers — the
    /// ground truth of which device segments actually died. Equals
    /// `retired_segments` under identity mapping; under wear leveling
    /// it is the count relocations route around.
    pub retired_physical: u64,
    /// Total segments the store manages (free + in use + retired);
    /// constant over a store's lifetime.
    pub total_segments: u64,
}

impl WearSummary {
    /// Fraction of the store's segments permanently retired by
    /// wear-out, in `[0, 1]`. `0.0` for an empty geometry.
    pub fn wear_fraction(&self) -> f64 {
        if self.total_segments == 0 {
            0.0
        } else {
            self.retired_segments as f64 / self.total_segments as f64
        }
    }

    /// Whether the placement pool has run dry — the next write that
    /// needs a fresh segment will fail with `Degraded`/`PoolDepleted`.
    pub fn is_depleted(&self) -> bool {
        self.free_segments == 0
    }
}

/// What [`ShardedE2KvStore::recover`] rebuilt, for operator logs and
/// the recovery benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shards restored from the snapshot.
    pub shards: usize,
    /// Keys resident after snapshot restore + WAL replay.
    pub keys: usize,
    /// WAL records replayed on top of the snapshot.
    pub replayed_ops: usize,
    /// Torn-tail bytes truncated from the WALs (unacked crash debris).
    pub truncated_bytes: u64,
    /// Wall-clock milliseconds of the whole recovery.
    pub duration_ms: u64,
}

/// The sharded variant: the same KV interface over a [`ShardedEngine`],
/// whose per-shard engines each keep their own key index, so no extra
/// DRAM index is needed here. Unlike [`E2KvStore`] this store is also
/// `Clone` — clones share the shards — which is what the multi-threaded
/// serving benchmarks hand out to worker threads.
///
/// Optionally crash-consistent: [`ShardedE2KvStore::with_persistence`]
/// attaches a per-shard WAL plus snapshot layer, and
/// [`ShardedE2KvStore::recover`] rebuilds a store from them after a
/// kill — every acknowledged mutation survives (see DESIGN.md §14).
#[derive(Debug, Clone)]
pub struct ShardedE2KvStore {
    engine: ShardedEngine,
    telemetry: StoreTelemetry,
    persist: Option<Arc<PersistState>>,
}

impl ShardedE2KvStore {
    /// Build over trained shards (no persistence attached).
    pub fn new(engine: ShardedEngine) -> Self {
        Self {
            engine,
            telemetry: StoreTelemetry::disconnected(),
            persist: None,
        }
    }

    /// Attach a WAL + snapshot persistence layer (and take the initial
    /// snapshot, so the data dir is replayable from op zero: every later
    /// acked mutation is recoverable as snapshot + WAL suffix).
    ///
    /// Works under active wear leveling: each shard's snapshot carries
    /// the controller's [`e2nvm_sim::ControllerState`] (policy state,
    /// logical→physical remap, quarantined physical slots), so recovery
    /// resumes the rotation exactly where the crash interrupted it
    /// (DESIGN.md §14). Pass `registry` to publish the
    /// `e2nvm_persist_*` series.
    pub fn with_persistence(
        mut self,
        cfg: PersistenceConfig,
        registry: Option<&TelemetryRegistry>,
    ) -> Result<Self> {
        cfg.validate()?;
        std::fs::create_dir_all(cfg.data_dir.join("wal"))
            .map_err(|e| StoreError::Persistence(format!("create data dir: {e}")))?;
        let telemetry = match registry {
            Some(r) => PersistTelemetry::register(r),
            None => PersistTelemetry::disconnected(),
        };
        let syncer = spawn_syncer(cfg.flush_policy, &telemetry)?;
        let wals = (0..self.engine.num_shards())
            .map(|i| {
                Wal::open(cfg.wal_path(i), cfg.flush_policy, telemetry.clone())
                    .map(|w| attach_syncer(w, i, &syncer))
                    .map(Mutex::new)
                    .map_err(|e| StoreError::Persistence(format!("open wal {i}: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        self.persist = Some(Arc::new(PersistState {
            cfg,
            wals,
            ops_since_snapshot: AtomicU64::new(0),
            telemetry,
            _syncer: syncer,
        }));
        // Also supersedes any stale WAL records from a previous
        // incarnation of the data dir (snapshot_now resets the logs).
        self.snapshot_now()?;
        Ok(self)
    }

    /// The attached persistence config, if any.
    pub fn persistence_config(&self) -> Option<&PersistenceConfig> {
        self.persist.as_ref().map(|p| &p.cfg)
    }

    /// Take a stop-the-world snapshot now: acquire every shard's WAL
    /// lock (quiescing mutations), capture each shard's device image and
    /// engine state, write the snapshot atomically, then truncate the
    /// WALs. Returns the snapshot bytes written, or `Ok(0)` when no
    /// persistence layer is attached (documented no-op, mirroring the
    /// [`NvmKvStore::flush`] contract).
    ///
    /// A crash between the snapshot rename and the WAL truncation is
    /// safe: WAL records are full-value upserts/deletes, so replaying
    /// ops the snapshot already contains is idempotent.
    pub fn snapshot_now(&self) -> Result<u64> {
        let Some(p) = &self.persist else {
            return Ok(0);
        };
        let mut wals: Vec<_> = p.wals.iter().map(Mutex::lock).collect();
        let mut shards = Vec::with_capacity(self.engine.num_shards());
        for i in 0..self.engine.num_shards() {
            shards.push(
                self.engine
                    .with_shard_engine(i, |e| -> Result<ShardState> {
                        let mc = e.controller();
                        Ok(ShardState {
                            device_image: e2nvm_sim::snapshot::to_image(mc.device()),
                            state: e.export_state()?,
                            controller: Some(mc.export_state()),
                        })
                    })?,
            );
        }
        let bytes = StoreSnapshot { shards }.save_atomic(&p.cfg.snapshot_path())?;
        for wal in wals.iter_mut() {
            wal.reset()
                .map_err(|e| StoreError::Persistence(format!("wal reset: {e}")))?;
        }
        p.ops_since_snapshot.store(0, Ordering::Relaxed);
        p.telemetry.snapshots.inc();
        p.telemetry.snapshot_bytes.add(bytes);
        Ok(bytes)
    }

    /// Rebuild a store from `cfg.data_dir`: load the snapshot, restore
    /// each shard's device and engine, replay the WAL suffix (truncating
    /// any torn tail), and re-attach the logs for appending. `Ok(None)`
    /// when no snapshot exists (fresh start — train and call
    /// [`ShardedE2KvStore::with_persistence`] instead).
    ///
    /// `e2cfg` must be the same engine config the store was built with;
    /// per-shard seeds are re-derived exactly as
    /// [`ShardedEngine::train`] derives them, and geometry mismatches
    /// (segment size, input bits) are rejected during restore.
    pub fn recover(
        cfg: &PersistenceConfig,
        e2cfg: &E2Config,
        registry: Option<&TelemetryRegistry>,
    ) -> Result<Option<(Self, RecoveryReport)>> {
        cfg.validate()?;
        let t0 = Instant::now();
        let Some(snap) = StoreSnapshot::load(&cfg.snapshot_path())? else {
            return Ok(None);
        };
        let mut engines = Vec::with_capacity(snap.shards.len());
        for (i, shard) in snap.shards.iter().enumerate() {
            let device = e2nvm_sim::snapshot::from_image(&shard.device_image)
                .map_err(|e| StoreError::Persistence(format!("shard {i} device image: {e}")))?;
            // v2 snapshots carry the controller's translation state
            // (remap, policy, quarantined slots); v1 snapshots were only
            // ever taken under identity mapping, so a pass-through
            // controller reconstructs them faithfully.
            let mc = match &shard.controller {
                Some(cs) => MemoryController::from_state(device, cs).map_err(|e| {
                    StoreError::Persistence(format!("shard {i} controller state: {e}"))
                })?,
                None => MemoryController::without_wear_leveling(device),
            };
            let shard_cfg = E2Config {
                // Golden-ratio stride, matching ShardedEngine::train.
                seed: e2cfg
                    .seed
                    .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..e2cfg.clone()
            };
            let mut engine = E2Engine::new(mc, shard_cfg)?;
            engine.restore_state(&shard.state)?;
            engines.push(engine);
        }
        let engine = ShardedEngine::new(engines);
        let telemetry = match registry {
            Some(r) => PersistTelemetry::register(r),
            None => PersistTelemetry::disconnected(),
        };
        std::fs::create_dir_all(cfg.data_dir.join("wal"))
            .map_err(|e| StoreError::Persistence(format!("create data dir: {e}")))?;
        let syncer = spawn_syncer(cfg.flush_policy, &telemetry)?;
        let mut replayed_ops = 0usize;
        let mut truncated_bytes = 0u64;
        let mut wals = Vec::with_capacity(engine.num_shards());
        for i in 0..engine.num_shards() {
            let path = cfg.wal_path(i);
            let replay = replay_and_truncate(&path)
                .map_err(|e| StoreError::Persistence(format!("replay wal {i}: {e}")))?;
            truncated_bytes += replay.total_bytes - replay.valid_bytes;
            replayed_ops += replay.ops.len();
            engine.with_shard_engine(i, |e| -> Result<()> {
                for op in &replay.ops {
                    match op {
                        WalOp::Put { key, value } => {
                            e.put(*key, value)?;
                        }
                        WalOp::Delete { key } => {
                            e.delete(*key)?;
                        }
                    }
                }
                Ok(())
            })?;
            wals.push(Mutex::new(attach_syncer(
                Wal::open(&path, cfg.flush_policy, telemetry.clone())
                    .map_err(|e| StoreError::Persistence(format!("open wal {i}: {e}")))?,
                i,
                &syncer,
            )));
        }
        // The replayed records stay in the logs until the next snapshot
        // truncates them: crashing again before then replays the same
        // idempotent prefix onto the same snapshot.
        let store = Self {
            engine,
            telemetry: StoreTelemetry::disconnected(),
            persist: Some(Arc::new(PersistState {
                cfg: cfg.clone(),
                wals,
                ops_since_snapshot: AtomicU64::new(replayed_ops as u64),
                telemetry: telemetry.clone(),
                _syncer: syncer,
            })),
        };
        let report = RecoveryReport {
            shards: store.engine.num_shards(),
            keys: store.len(),
            replayed_ops,
            truncated_bytes,
            duration_ms: t0.elapsed().as_millis() as u64,
        };
        telemetry.recovery_ms.set(report.duration_ms as i64);
        Ok(Some((store, report)))
    }

    /// Count `n` acked mutations toward the periodic snapshot trigger.
    /// Best-effort: if the triggered snapshot fails, the previous
    /// snapshot plus the (longer) WAL still cover every acked write, so
    /// the failure degrades recovery time, not durability; explicit
    /// [`ShardedE2KvStore::snapshot_now`]/[`NvmKvStore::flush`] calls
    /// surface snapshot errors to the caller.
    fn note_mutations(&self, p: &PersistState, n: u64) {
        let every = p.cfg.snapshot_every_ops;
        if every == 0 {
            return;
        }
        if p.ops_since_snapshot.fetch_add(n, Ordering::Relaxed) + n >= every {
            // Claim the trigger: only the thread that swaps out a
            // large count snapshots; racers see 0 and move on.
            if p.ops_since_snapshot.swap(0, Ordering::Relaxed) >= every {
                let _ = self.snapshot_now();
            }
        }
    }

    /// Register this store's KV-op metrics — and every shard's engine
    /// and device series — on `registry`. Attach before handing clones
    /// to worker threads so all clones share the same series. (The
    /// `e2nvm_persist_*` series are registered separately, at
    /// [`ShardedE2KvStore::with_persistence`]/[`ShardedE2KvStore::recover`]
    /// time.)
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry) {
        self.engine.attach_telemetry(registry);
        self.telemetry = StoreTelemetry::register(registry, "sharded");
    }

    /// Borrow the sharded engine (stats, retraining, shard inspection).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Segments permanently retired by wear-out across all shards
    /// (degraded mode).
    pub fn retired_count(&self) -> usize {
        self.engine.retired_count()
    }

    /// Physical slots quarantined by the shards' memory controllers —
    /// the device-side counterpart of [`Self::retired_count`], and the
    /// figure the HEALTH frame reports as ground truth.
    pub fn retired_physical_count(&self) -> usize {
        self.engine.retired_physical_count()
    }

    /// Point-in-time wear summary across all shards — what the wire
    /// protocol's HEALTH frame carries and what the cluster layer's
    /// health prober acts on.
    pub fn wear_summary(&self) -> WearSummary {
        WearSummary {
            keys: self.engine.len() as u64,
            free_segments: self.engine.free_count() as u64,
            retired_segments: self.engine.retired_count() as u64,
            retired_physical: self.engine.retired_physical_count() as u64,
            total_segments: self.engine.num_segments() as u64,
        }
    }

    /// Number of keys stored across all shards.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }
}

impl NvmKvStore for ShardedE2KvStore {
    fn name(&self) -> &'static str {
        "E2-NVM KV (sharded)"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        let _timer = self.telemetry.put_latency_ns.start_timer();
        self.telemetry.puts.inc();
        let Some(p) = self.persist.clone() else {
            self.engine.put(key, value)?;
            return Ok(());
        };
        let shard = self.engine.shard_for(key);
        {
            // WAL lock held across the apply: record order == apply
            // order. The record buffers in the WAL and reaches the
            // kernel at the next `commit` — which the serving layer
            // runs before the ack leaves the process, so a crash in
            // between loses only mutations the client was never acked.
            let mut wal = p.wals[shard].lock();
            self.engine.shard(shard).put(key, value)?;
            wal.append_put(key, value)
                .map_err(|e| StoreError::Persistence(format!("wal append: {e}")))?;
        }
        self.note_mutations(&p, 1);
        Ok(())
    }

    fn put_many(&mut self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        self.telemetry.puts.add(pairs.len() as u64);
        // Each shard packs its share of the batch into shared segments
        // under a single lock acquisition (see
        // [`ShardedEngine::put_many`]).
        let Some(p) = self.persist.clone() else {
            return self
                .engine
                .put_many(pairs)
                .into_iter()
                .map(|r| r.map_err(StoreError::from))
                .collect();
        };
        // Route the batch ourselves so each shard's group applies and
        // logs under that shard's WAL lock (one group-commit append per
        // shard). Mirrors ShardedEngine::put_many's routing.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.engine.num_shards()];
        for (i, &(key, _)) in pairs.iter().enumerate() {
            by_shard[self.engine.shard_for(key)].push(i);
        }
        let mut out: Vec<Option<Result<()>>> = (0..pairs.len()).map(|_| None).collect();
        let mut acked = 0u64;
        for (shard, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let group: Vec<(u64, &[u8])> = idxs.iter().map(|&i| pairs[i]).collect();
            let mut wal = p.wals[shard].lock();
            let results = self.engine.shard(shard).put_many(&group);
            // Log exactly the applied (successful) subset, in order,
            // encoding straight from the borrowed values.
            let mut logged = 0u64;
            let mut appended: std::result::Result<(), StoreError> = Ok(());
            for (&(key, value), r) in group.iter().zip(&results) {
                if r.is_ok() {
                    if let Err(e) = wal.append_put(key, value) {
                        appended = Err(StoreError::Persistence(format!("wal append: {e}")));
                        break;
                    }
                    logged += 1;
                }
            }
            drop(wal);
            if appended.is_ok() {
                acked += logged;
            }
            for (&i, r) in idxs.iter().zip(results) {
                out[i] = Some(match (&appended, r) {
                    // Applied in memory but not durably logged: fail
                    // the ack so the client retries.
                    (Err(e), Ok(())) => Err(e.clone()),
                    (_, r) => r.map_err(StoreError::from),
                });
            }
        }
        if acked > 0 {
            self.note_mutations(&p, acked);
        }
        out.into_iter()
            .map(|r| r.expect("every pair routed to exactly one shard"))
            .collect()
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let _timer = self.telemetry.get_latency_ns.start_timer();
        self.telemetry.gets.inc();
        match self.engine.get(key) {
            Ok(v) => Ok(Some(v)),
            Err(E2Error::KeyNotFound(_)) => Ok(None),
            Err(e) => Err(StoreError::from(e)),
        }
    }

    fn get_many(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u8>>>> {
        self.telemetry.gets.add(keys.len() as u64);
        self.engine
            .get_many(keys)
            .into_iter()
            .map(|r| match r {
                Ok(v) => Ok(Some(v)),
                Err(E2Error::KeyNotFound(_)) => Ok(None),
                Err(e) => Err(StoreError::from(e)),
            })
            .collect()
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        self.telemetry.deletes.inc();
        let Some(p) = self.persist.clone() else {
            return Ok(self.engine.delete(key)?);
        };
        let shard = self.engine.shard_for(key);
        let existed = {
            let mut wal = p.wals[shard].lock();
            let existed = self.engine.shard(shard).delete(key)?;
            if existed {
                // Deleting an absent key changes nothing; log only
                // actual state transitions.
                wal.append_delete(key)
                    .map_err(|e| StoreError::Persistence(format!("wal append: {e}")))?;
            }
            existed
        };
        if existed {
            self.note_mutations(&p, 1);
        }
        Ok(existed)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.telemetry.scans.inc();
        Ok(self.engine.scan(lo, hi)?)
    }

    fn scan_limit(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>> {
        self.telemetry.scans.inc();
        Ok(self.engine.scan_limit(lo, hi, limit)?)
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.engine.device_stats()
    }

    fn reset_stats(&mut self) {
        self.engine.reset_device_stats();
    }

    fn maintenance(&mut self) {
        self.engine.pump_retraining();
    }

    fn flush(&mut self) -> Result<u64> {
        self.snapshot_now()
    }

    fn commit(&mut self) -> Result<()> {
        let Some(p) = &self.persist else {
            return Ok(());
        };
        for wal in &p.wals {
            wal.lock()
                .commit()
                .map_err(|e| StoreError::Persistence(format!("wal commit: {e}")))?;
        }
        Ok(())
    }

    fn telemetry(&self) -> Option<&TelemetryRegistry> {
        self.telemetry.registry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_against_shadow;
    use e2nvm_core::E2Config;
    use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn store(segments: usize, seg_bytes: usize) -> E2KvStore {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(segments)
                .build()
                .unwrap(),
        );
        let cfg = E2Config::builder()
            .fast(seg_bytes, 2)
            .pretrain_epochs(5)
            .joint_epochs(1)
            .padding_type(e2nvm_core::PaddingType::Zero)
            .build()
            .unwrap();
        let mut engine = E2Engine::new(MemoryController::without_wear_leveling(dev), cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        for i in 0..segments {
            let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
            let content: Vec<u8> = (0..seg_bytes)
                .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                .collect();
            engine
                .controller_mut()
                .seed(LogicalSegment(i), &content)
                .unwrap();
        }
        engine.train().unwrap();
        E2KvStore::new(engine)
    }

    #[test]
    fn basic_crud() {
        let mut s = store(32, 64);
        s.put(10, b"ten").unwrap();
        assert_eq!(s.get(10).unwrap().unwrap(), b"ten");
        s.put(10, b"TEN").unwrap();
        assert_eq!(s.get(10).unwrap().unwrap(), b"TEN");
        assert!(s.delete(10).unwrap());
        assert!(!s.delete(10).unwrap());
        assert!(s.is_empty());
    }

    #[test]
    fn shadow_stress() {
        let mut s = store(128, 64);
        check_against_shadow(&mut s, 400, 12, 29).unwrap();
    }

    #[test]
    fn scan_in_key_order() {
        let mut s = store(32, 64);
        for k in [4u64, 8, 2, 6] {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        let keys: Vec<u64> = s.scan(3, 7).unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![4, 6]);
    }

    fn kv_cfg(seg_bytes: usize) -> E2Config {
        E2Config::builder()
            .fast(seg_bytes, 2)
            .pretrain_epochs(5)
            .joint_epochs(1)
            .padding_type(e2nvm_core::PaddingType::Zero)
            .build()
            .unwrap()
    }

    fn sharded_store(num_shards: usize, segments: usize, seg_bytes: usize) -> ShardedE2KvStore {
        let dev_cfg = DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(segments)
            .build()
            .unwrap();
        let cfg = kv_cfg(seg_bytes);
        let mut rng = StdRng::seed_from_u64(23);
        let controllers: Vec<MemoryController> =
            e2nvm_sim::partition_controllers(&dev_cfg, num_shards)
                .unwrap()
                .into_iter()
                .map(|(_, mut mc)| {
                    for i in 0..mc.num_segments() {
                        let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
                        let content: Vec<u8> = (0..seg_bytes)
                            .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                            .collect();
                        mc.seed(LogicalSegment(i), &content).unwrap();
                    }
                    mc
                })
                .collect();
        ShardedE2KvStore::new(ShardedEngine::train(controllers, &cfg).unwrap())
    }

    #[test]
    fn sharded_basic_crud() {
        let mut s = sharded_store(4, 64, 64);
        s.put(10, b"ten").unwrap();
        assert_eq!(s.get(10).unwrap().unwrap(), b"ten");
        s.put(10, b"TEN").unwrap();
        assert_eq!(s.get(10).unwrap().unwrap(), b"TEN");
        assert!(s.delete(10).unwrap());
        assert!(!s.delete(10).unwrap());
        assert_eq!(s.get(10).unwrap(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn sharded_shadow_stress() {
        let mut s = sharded_store(4, 192, 64);
        check_against_shadow(&mut s, 400, 12, 31).unwrap();
    }

    #[test]
    fn put_many_packs_and_roundtrips() {
        let mut s = store(32, 64);
        let values: Vec<(u64, Vec<u8>)> = (0..12u64).map(|k| (k, vec![k as u8; 16])).collect();
        let pairs: Vec<(u64, &[u8])> = values.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let free_before = s.engine.free_count();
        assert!(s.put_many(&pairs).iter().all(Result::is_ok));
        // Twelve 16-byte values pack four-to-a-64B-segment.
        assert_eq!(free_before - s.engine.free_count(), 3);
        for (k, v) in &values {
            assert_eq!(s.get(*k).unwrap().as_ref(), Some(v));
        }
        // Deleting batch-mates frees the segment only when the last
        // entry dies.
        for k in 0..4u64 {
            assert!(s.delete(k).unwrap());
        }
        assert_eq!(s.engine.free_count(), free_before - 2);
        // Batched reads agree, including misses.
        let got = s.get_many(&[5, 0, 7]).unwrap();
        assert_eq!(got[0].as_deref(), Some(&[5u8; 16][..]));
        assert_eq!(got[1], None);
        assert_eq!(got[2].as_deref(), Some(&[7u8; 16][..]));
    }

    #[test]
    fn sharded_put_many_roundtrips() {
        let mut s = sharded_store(4, 128, 64);
        let values: Vec<(u64, Vec<u8>)> = (0..32u64).map(|k| (k, vec![!(k as u8); 12])).collect();
        let pairs: Vec<(u64, &[u8])> = values.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        assert!(s.put_many(&pairs).iter().all(Result::is_ok));
        assert_eq!(s.len(), 32);
        let keys: Vec<u64> = (0..34u64).collect();
        let got = s.get_many(&keys).unwrap();
        for k in 0..32usize {
            assert_eq!(got[k].as_deref(), Some(&values[k].1[..]), "key {k}");
        }
        assert_eq!(got[32], None);
        assert_eq!(got[33], None);
    }

    #[test]
    fn persistence_recovers_acked_writes_after_kill() {
        let dir = std::env::temp_dir().join(format!(
            "e2nvm_kv_recover_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let e2cfg = kv_cfg(64);
        let pcfg = || {
            PersistenceConfig::builder()
                .data_dir(&dir)
                .flush_policy(e2nvm_persist::FlushPolicy::OsOnly)
                .build()
                .unwrap()
        };
        let mut shadow: std::collections::BTreeMap<u64, Vec<u8>> = Default::default();
        {
            let mut s = sharded_store(4, 192, 64)
                .with_persistence(pcfg(), None)
                .unwrap();
            for k in 0..24u64 {
                let v = vec![k as u8; 16];
                s.put(k, &v).unwrap();
                shadow.insert(k, v);
            }
            let batch: Vec<(u64, Vec<u8>)> =
                (100..112u64).map(|k| (k, vec![!(k as u8); 12])).collect();
            let pairs: Vec<(u64, &[u8])> = batch.iter().map(|(k, v)| (*k, v.as_slice())).collect();
            assert!(s.put_many(&pairs).iter().all(Result::is_ok));
            for (k, v) in batch {
                shadow.insert(k, v);
            }
            for k in [3u64, 7, 105] {
                assert!(s.delete(k).unwrap());
                shadow.remove(&k);
            }
            // Group-commit barrier: hand the buffered records to the
            // kernel, as the server does before flushing acks.
            s.commit().unwrap();
            // Drop without a final snapshot: the data dir now holds the
            // *initial* (empty-ish) snapshot plus every op in the WALs —
            // the SIGKILL shape.
        }
        let (mut r, report) = ShardedE2KvStore::recover(&pcfg(), &e2cfg, None)
            .unwrap()
            .expect("snapshot present");
        assert_eq!(report.shards, 4);
        assert_eq!(report.keys, shadow.len());
        assert!(report.replayed_ops >= 24 + 12 + 3);
        assert_eq!(report.truncated_bytes, 0);
        for (k, v) in &shadow {
            assert_eq!(r.get(*k).unwrap().as_ref(), Some(v), "key {k}");
        }
        assert_eq!(r.get(3).unwrap(), None);
        // Second generation: snapshot compacts the WAL, then more ops
        // land in the fresh log; a second recovery sees both layers.
        assert!(r.snapshot_now().unwrap() > 0);
        r.put(500, b"after-snapshot").unwrap();
        shadow.insert(500, b"after-snapshot".to_vec());
        assert!(r.delete(0).unwrap());
        shadow.remove(&0);
        drop(r);
        let (mut r2, report2) = ShardedE2KvStore::recover(&pcfg(), &e2cfg, None)
            .unwrap()
            .expect("snapshot present");
        assert_eq!(report2.replayed_ops, 2);
        assert_eq!(r2.len(), shadow.len());
        for (k, v) in &shadow {
            assert_eq!(r2.get(*k).unwrap().as_ref(), Some(v), "key {k}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_truncates_torn_wal_tail() {
        let dir = std::env::temp_dir().join(format!(
            "e2nvm_kv_torn_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let e2cfg = kv_cfg(64);
        let pcfg = PersistenceConfig::builder()
            .data_dir(&dir)
            .flush_policy(e2nvm_persist::FlushPolicy::OsOnly)
            .build()
            .unwrap();
        {
            let mut s = sharded_store(2, 96, 64)
                .with_persistence(pcfg.clone(), None)
                .unwrap();
            for k in 0..8u64 {
                s.put(k, &[k as u8; 16]).unwrap();
            }
        }
        // Tear every WAL mid-record, as a crash mid-append would.
        let mut tore = false;
        for i in 0..2 {
            let path = pcfg.wal_path(i);
            let len = std::fs::metadata(&path).unwrap().len();
            if len > 3 {
                let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                f.set_len(len - 3).unwrap();
                tore = true;
            }
        }
        assert!(tore, "workload must hit at least one shard's WAL");
        let (mut r, report) = ShardedE2KvStore::recover(&pcfg, &e2cfg, None)
            .unwrap()
            .expect("snapshot present");
        // The torn record is gone (it was never acked in this scenario);
        // every fully-written record survives.
        assert!(report.truncated_bytes > 0);
        assert!(report.keys < 8);
        for k in 0..8u64 {
            if let Some(v) = r.get(k).unwrap() {
                assert_eq!(v, vec![k as u8; 16]);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Build a sharded store whose shards all run start-gap wear
    /// leveling (ψ = `psi`), over `segments` *physical* slots split
    /// across `num_shards` shards. Each shard's logical capacity is one
    /// less than its slice of the physical space (the reserved gap).
    fn wear_leveled_store(
        num_shards: usize,
        segments: usize,
        seg_bytes: usize,
        psi: u64,
    ) -> ShardedE2KvStore {
        let dev_cfg = DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(segments)
            .build()
            .unwrap();
        let cfg = kv_cfg(seg_bytes);
        let mut rng = StdRng::seed_from_u64(23);
        let controllers: Vec<MemoryController> =
            e2nvm_sim::partition_controllers_with(&dev_cfg, num_shards, |dev| {
                MemoryController::with_start_gap(dev, psi)
            })
            .unwrap()
            .into_iter()
            .map(|(_, mut mc)| {
                for i in 0..mc.num_segments() {
                    let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
                    let content: Vec<u8> = (0..seg_bytes)
                        .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                        .collect();
                    mc.seed(LogicalSegment(i), &content).unwrap();
                }
                mc
            })
            .collect();
        ShardedE2KvStore::new(ShardedEngine::train(controllers, &cfg).unwrap())
    }

    /// Per-shard controller state of a recovered/live store, for
    /// comparing translation layers across a kill.
    fn controller_states(s: &ShardedE2KvStore) -> Vec<e2nvm_sim::ControllerState> {
        (0..s.engine().num_shards())
            .map(|i| {
                s.engine()
                    .with_shard_engine(i, |e| e.controller().export_state())
            })
            .collect()
    }

    #[test]
    fn persistence_roundtrips_under_active_wear_leveling() {
        let dir = std::env::temp_dir().join(format!(
            "e2nvm_kv_wl_recover_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let e2cfg = kv_cfg(64);
        let pcfg = || {
            PersistenceConfig::builder()
                .data_dir(&dir)
                .flush_policy(e2nvm_persist::FlushPolicy::OsOnly)
                .build()
                .unwrap()
        };
        let mut shadow: std::collections::BTreeMap<u64, Vec<u8>> = Default::default();
        {
            // ψ=2 so ordinary test traffic rotates every shard's remap
            // away from identity while the WAL is live.
            let mut s = wear_leveled_store(2, 98, 64, 2)
                .with_persistence(pcfg(), None)
                .unwrap();
            for k in 0..40u64 {
                let v = vec![(k as u8) ^ 0xA5; 24];
                s.put(k, &v).unwrap();
                shadow.insert(k, v);
            }
            for k in [5u64, 17, 31] {
                assert!(s.delete(k).unwrap());
                shadow.remove(&k);
            }
            s.commit().unwrap();
            for cs in controller_states(&s) {
                assert!(cs.remap.iter().enumerate().any(|(l, &p)| l != p));
            }
            // Kill: drop without a final snapshot. The data dir holds
            // the attach-time snapshot plus every op in the WALs.
        }
        let (mut r, report) = ShardedE2KvStore::recover(&pcfg(), &e2cfg, None)
            .unwrap()
            .expect("snapshot present");
        assert_eq!(report.keys, shadow.len());
        for (k, v) in &shadow {
            assert_eq!(r.get(*k).unwrap().as_ref(), Some(v), "key {k}");
        }
        // The wear-leveling policy survived the kill and kept rotating
        // through replay: still active, still a consistent bijection.
        for i in 0..r.engine().num_shards() {
            r.engine().with_shard_engine(i, |e| {
                assert!(e.controller().wear_leveling_active());
                assert_eq!(e.controller().wear_leveling_name(), "start-gap");
                assert!(e.controller().remap_is_consistent());
            });
        }
        // Second cycle: snapshot the *mid-rotation* state, kill with no
        // further ops, and recover — the restored controllers must equal
        // the snapshotted ones exactly (replayed_ops == 0, so nothing
        // can have evolved).
        assert!(r.snapshot_now().unwrap() > 0);
        let frozen = controller_states(&r);
        assert!(frozen
            .iter()
            .any(|cs| cs.remap.iter().enumerate().any(|(l, &p)| l != p)));
        drop(r);
        let (mut r2, report2) = ShardedE2KvStore::recover(&pcfg(), &e2cfg, None)
            .unwrap()
            .expect("snapshot present");
        assert_eq!(report2.replayed_ops, 0);
        assert_eq!(controller_states(&r2), frozen);
        for (k, v) in &shadow {
            assert_eq!(r2.get(*k).unwrap().as_ref(), Some(v), "key {k}");
        }
        // And the recovered store keeps serving mutations.
        r2.put(900, b"post-recovery").unwrap();
        assert_eq!(r2.get(900).unwrap().unwrap(), b"post-recovery");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deletes_recycle_capacity() {
        let mut s = store(16, 64);
        for k in 0..10u64 {
            s.put(k, &[k as u8; 32]).unwrap();
        }
        for k in 0..10u64 {
            s.delete(k).unwrap();
        }
        // All capacity back: another 10 puts must succeed.
        for k in 100..110u64 {
            s.put(k, &[1u8; 32]).unwrap();
        }
        assert_eq!(s.len(), 10);
    }
}
