//! The paper's Figure 3 system: a persistent key-value store on hybrid
//! DRAM-NVM built on E2-NVM — a DRAM **red-black tree** index (the
//! "RB-Tree.put(D, A)" of Algorithm 1) over values placed by the
//! [`E2Engine`].

use crate::rbtree::RbTree;
use crate::store::{Result, StoreError};
use crate::telemetry::StoreTelemetry;
use crate::traits::NvmKvStore;
use e2nvm_core::{Batch, BatchAccumulator, E2Engine, E2Error, ShardedEngine};
use e2nvm_sim::SegmentId;
use e2nvm_telemetry::TelemetryRegistry;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    seg: SegmentId,
    off: usize,
    len: usize,
}

impl Default for Loc {
    fn default() -> Self {
        Self {
            seg: SegmentId(usize::MAX),
            off: 0,
            len: 0,
        }
    }
}

/// The E2-NVM-backed key-value store.
pub struct E2KvStore {
    engine: E2Engine,
    index: RbTree<Loc>,
    /// Live-entry counts for segments shared by a packed
    /// [`NvmKvStore::put_many`] batch; absent segments hold exactly one
    /// entry. A shared segment is recycled only when its count hits 0.
    live: HashMap<SegmentId, usize>,
    telemetry: StoreTelemetry,
}

impl E2KvStore {
    /// Build over a *trained* engine.
    ///
    /// # Panics
    /// Panics if the engine has not been trained.
    pub fn new(engine: E2Engine) -> Self {
        assert!(engine.is_trained(), "E2KvStore: engine must be trained");
        Self {
            engine,
            index: RbTree::new(),
            live: HashMap::new(),
            telemetry: StoreTelemetry::disconnected(),
        }
    }

    /// Drop one live reference to the segment behind a displaced index
    /// entry; recycle it once no entry points there any more.
    fn release_loc(&mut self, loc: Loc) -> Result<()> {
        match self.live.get_mut(&loc.seg) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    self.live.remove(&loc.seg);
                    self.engine.recycle_segment(loc.seg)?;
                }
            }
            None => self.engine.recycle_segment(loc.seg)?,
        }
        Ok(())
    }

    /// Commit one emitted batch; on placement failure, fail every
    /// pending pair's result slot. Clears `pending` either way.
    fn commit_pending(
        &mut self,
        batch: &Batch,
        pending: &mut Vec<usize>,
        results: &mut [Result<()>],
    ) {
        if let Err(e) = self.commit_batch(batch) {
            for &i in pending.iter() {
                results[i] = Err(e.clone());
            }
        }
        pending.clear();
    }

    /// Place one emitted batch on a segment and index every item.
    fn commit_batch(&mut self, batch: &Batch) -> Result<()> {
        let (seg, _report) = self.engine.place_value(&batch.data)?;
        // Count the whole batch up front so an intra-batch duplicate
        // release cannot recycle the segment under later items.
        self.live.insert(seg, batch.items.len());
        for &(key, off, len) in &batch.items {
            if let Some(old) = self.index.insert(key, Loc { seg, off, len }) {
                self.release_loc(old)?;
            }
        }
        Ok(())
    }

    /// Register this store's KV-op metrics — and the wrapped engine's
    /// and device's — on `registry`.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry) {
        self.engine.attach_telemetry(registry, 0);
        self.telemetry = StoreTelemetry::register(registry, "e2");
    }

    /// Borrow the engine (retraining, stats, wear inspection).
    pub fn engine_mut(&mut self) -> &mut E2Engine {
        &mut self.engine
    }

    /// Segments permanently retired by wear-out (degraded mode).
    pub fn retired_count(&self) -> usize {
        self.engine.retired_count()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

impl NvmKvStore for E2KvStore {
    fn name(&self) -> &'static str {
        "E2-NVM KV"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        // Timed explicitly (not via the drop-guard timer) because
        // release_loc needs `&mut self` while a guard would hold the
        // telemetry borrow.
        let t0 = crate::telemetry::now_if_enabled();
        self.telemetry.puts.inc();
        // Algorithm 1: predict -> pop address -> differential write ->
        // index update.
        let (seg, _report) = self.engine.place_value(value)?;
        if let Some(old) = self.index.insert(
            key,
            Loc {
                seg,
                off: 0,
                len: value.len(),
            },
        ) {
            self.release_loc(old)?;
        }
        if let Some(t0) = t0 {
            self.telemetry
                .put_latency_ns
                .observe(t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn put_many(&mut self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        self.telemetry.puts.add(pairs.len() as u64);
        let seg_bytes = self.engine.config().segment_bytes;
        let mut results: Vec<Result<()>> = (0..pairs.len()).map(|_| Ok(())).collect();
        let mut acc = BatchAccumulator::new(seg_bytes);
        let mut pending: Vec<usize> = Vec::new();
        for (i, &(key, value)) in pairs.iter().enumerate() {
            if value.len() > seg_bytes {
                results[i] = Err(StoreError::from(E2Error::ValueTooLarge {
                    len: value.len(),
                    segment_bytes: seg_bytes,
                }));
                continue;
            }
            if value.is_empty() {
                // The accumulator cannot carry zero-length payloads;
                // flush first (order matters for duplicate keys), then
                // place the empty value on its own segment.
                if let Some(batch) = acc.flush() {
                    self.commit_pending(&batch, &mut pending, &mut results);
                }
                results[i] = match self.engine.place_value(value) {
                    Ok((seg, _report)) => match self.index.insert(
                        key,
                        Loc {
                            seg,
                            off: 0,
                            len: 0,
                        },
                    ) {
                        Some(old) => self.release_loc(old),
                        None => Ok(()),
                    },
                    Err(e) => Err(e.into()),
                };
                continue;
            }
            if let Some(batch) = acc.push(key, value) {
                self.commit_pending(&batch, &mut pending, &mut results);
            }
            pending.push(i);
        }
        if let Some(batch) = acc.flush() {
            self.commit_pending(&batch, &mut pending, &mut results);
        }
        results
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let _timer = self.telemetry.get_latency_ns.start_timer();
        self.telemetry.gets.inc();
        let Some(loc) = self.index.get(key).copied() else {
            return Ok(None);
        };
        let data = self.engine.controller_mut().read(loc.seg)?;
        Ok(Some(data[loc.off..loc.off + loc.len].to_vec()))
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        self.telemetry.deletes.inc();
        // Algorithm 2: index lookup -> flag reset (DRAM) -> recycle the
        // address through the encoder back into the DAP.
        let Some(loc) = self.index.remove(key) else {
            return Ok(false);
        };
        self.release_loc(loc)?;
        Ok(true)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.telemetry.scans.inc();
        let locs: Vec<(u64, Loc)> = self
            .index
            .range(lo, hi)
            .into_iter()
            .map(|(k, loc)| (k, *loc))
            .collect();
        locs.into_iter()
            .map(|(k, loc)| {
                let data = self.engine.controller_mut().read(loc.seg)?;
                Ok((k, data[loc.off..loc.off + loc.len].to_vec()))
            })
            .collect()
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.engine.device_stats().clone()
    }

    fn reset_stats(&mut self) {
        self.engine.reset_device_stats();
    }

    fn telemetry(&self) -> Option<&TelemetryRegistry> {
        self.telemetry.registry()
    }
}

/// The sharded variant: the same KV interface over a [`ShardedEngine`],
/// whose per-shard engines each keep their own key index, so no extra
/// DRAM index is needed here. Unlike [`E2KvStore`] this store is also
/// `Clone` — clones share the shards — which is what the multi-threaded
/// serving benchmarks hand out to worker threads.
#[derive(Debug, Clone)]
pub struct ShardedE2KvStore {
    engine: ShardedEngine,
    telemetry: StoreTelemetry,
}

impl ShardedE2KvStore {
    /// Build over trained shards.
    pub fn new(engine: ShardedEngine) -> Self {
        Self {
            engine,
            telemetry: StoreTelemetry::disconnected(),
        }
    }

    /// Register this store's KV-op metrics — and every shard's engine
    /// and device series — on `registry`. Attach before handing clones
    /// to worker threads so all clones share the same series.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry) {
        self.engine.attach_telemetry(registry);
        self.telemetry = StoreTelemetry::register(registry, "sharded");
    }

    /// Borrow the sharded engine (stats, retraining, shard inspection).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Segments permanently retired by wear-out across all shards
    /// (degraded mode).
    pub fn retired_count(&self) -> usize {
        self.engine.retired_count()
    }

    /// Number of keys stored across all shards.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }
}

impl NvmKvStore for ShardedE2KvStore {
    fn name(&self) -> &'static str {
        "E2-NVM KV (sharded)"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        let _timer = self.telemetry.put_latency_ns.start_timer();
        self.telemetry.puts.inc();
        self.engine.put(key, value)?;
        Ok(())
    }

    fn put_many(&mut self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        self.telemetry.puts.add(pairs.len() as u64);
        // Each shard packs its share of the batch into shared segments
        // under a single lock acquisition (see
        // [`ShardedEngine::put_many`]).
        self.engine
            .put_many(pairs)
            .into_iter()
            .map(|r| r.map_err(StoreError::from))
            .collect()
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let _timer = self.telemetry.get_latency_ns.start_timer();
        self.telemetry.gets.inc();
        match self.engine.get(key) {
            Ok(v) => Ok(Some(v)),
            Err(E2Error::KeyNotFound(_)) => Ok(None),
            Err(e) => Err(StoreError::from(e)),
        }
    }

    fn get_many(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u8>>>> {
        self.telemetry.gets.add(keys.len() as u64);
        self.engine
            .get_many(keys)
            .into_iter()
            .map(|r| match r {
                Ok(v) => Ok(Some(v)),
                Err(E2Error::KeyNotFound(_)) => Ok(None),
                Err(e) => Err(StoreError::from(e)),
            })
            .collect()
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        self.telemetry.deletes.inc();
        Ok(self.engine.delete(key)?)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.telemetry.scans.inc();
        Ok(self.engine.scan(lo, hi)?)
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.engine.device_stats()
    }

    fn reset_stats(&mut self) {
        self.engine.reset_device_stats();
    }

    fn maintenance(&mut self) {
        self.engine.pump_retraining();
    }

    fn telemetry(&self) -> Option<&TelemetryRegistry> {
        self.telemetry.registry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_against_shadow;
    use e2nvm_core::E2Config;
    use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn store(segments: usize, seg_bytes: usize) -> E2KvStore {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(segments)
                .build()
                .unwrap(),
        );
        let cfg = E2Config::builder()
            .fast(seg_bytes, 2)
            .pretrain_epochs(5)
            .joint_epochs(1)
            .padding_type(e2nvm_core::PaddingType::Zero)
            .build()
            .unwrap();
        let mut engine = E2Engine::new(MemoryController::without_wear_leveling(dev), cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        for i in 0..segments {
            let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
            let content: Vec<u8> = (0..seg_bytes)
                .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                .collect();
            engine
                .controller_mut()
                .seed(SegmentId(i), &content)
                .unwrap();
        }
        engine.train().unwrap();
        E2KvStore::new(engine)
    }

    #[test]
    fn basic_crud() {
        let mut s = store(32, 64);
        s.put(10, b"ten").unwrap();
        assert_eq!(s.get(10).unwrap().unwrap(), b"ten");
        s.put(10, b"TEN").unwrap();
        assert_eq!(s.get(10).unwrap().unwrap(), b"TEN");
        assert!(s.delete(10).unwrap());
        assert!(!s.delete(10).unwrap());
        assert!(s.is_empty());
    }

    #[test]
    fn shadow_stress() {
        let mut s = store(128, 64);
        check_against_shadow(&mut s, 400, 12, 29).unwrap();
    }

    #[test]
    fn scan_in_key_order() {
        let mut s = store(32, 64);
        for k in [4u64, 8, 2, 6] {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        let keys: Vec<u64> = s.scan(3, 7).unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![4, 6]);
    }

    fn sharded_store(num_shards: usize, segments: usize, seg_bytes: usize) -> ShardedE2KvStore {
        let dev_cfg = DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(segments)
            .build()
            .unwrap();
        let cfg = E2Config::builder()
            .fast(seg_bytes, 2)
            .pretrain_epochs(5)
            .joint_epochs(1)
            .padding_type(e2nvm_core::PaddingType::Zero)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let controllers: Vec<MemoryController> =
            e2nvm_sim::partition_controllers(&dev_cfg, num_shards)
                .unwrap()
                .into_iter()
                .map(|(_, mut mc)| {
                    for i in 0..mc.num_segments() {
                        let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
                        let content: Vec<u8> = (0..seg_bytes)
                            .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                            .collect();
                        mc.seed(SegmentId(i), &content).unwrap();
                    }
                    mc
                })
                .collect();
        ShardedE2KvStore::new(ShardedEngine::train(controllers, &cfg).unwrap())
    }

    #[test]
    fn sharded_basic_crud() {
        let mut s = sharded_store(4, 64, 64);
        s.put(10, b"ten").unwrap();
        assert_eq!(s.get(10).unwrap().unwrap(), b"ten");
        s.put(10, b"TEN").unwrap();
        assert_eq!(s.get(10).unwrap().unwrap(), b"TEN");
        assert!(s.delete(10).unwrap());
        assert!(!s.delete(10).unwrap());
        assert_eq!(s.get(10).unwrap(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn sharded_shadow_stress() {
        let mut s = sharded_store(4, 192, 64);
        check_against_shadow(&mut s, 400, 12, 31).unwrap();
    }

    #[test]
    fn put_many_packs_and_roundtrips() {
        let mut s = store(32, 64);
        let values: Vec<(u64, Vec<u8>)> = (0..12u64).map(|k| (k, vec![k as u8; 16])).collect();
        let pairs: Vec<(u64, &[u8])> = values.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let free_before = s.engine.free_count();
        assert!(s.put_many(&pairs).iter().all(Result::is_ok));
        // Twelve 16-byte values pack four-to-a-64B-segment.
        assert_eq!(free_before - s.engine.free_count(), 3);
        for (k, v) in &values {
            assert_eq!(s.get(*k).unwrap().as_ref(), Some(v));
        }
        // Deleting batch-mates frees the segment only when the last
        // entry dies.
        for k in 0..4u64 {
            assert!(s.delete(k).unwrap());
        }
        assert_eq!(s.engine.free_count(), free_before - 2);
        // Batched reads agree, including misses.
        let got = s.get_many(&[5, 0, 7]).unwrap();
        assert_eq!(got[0].as_deref(), Some(&[5u8; 16][..]));
        assert_eq!(got[1], None);
        assert_eq!(got[2].as_deref(), Some(&[7u8; 16][..]));
    }

    #[test]
    fn sharded_put_many_roundtrips() {
        let mut s = sharded_store(4, 128, 64);
        let values: Vec<(u64, Vec<u8>)> = (0..32u64).map(|k| (k, vec![!(k as u8); 12])).collect();
        let pairs: Vec<(u64, &[u8])> = values.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        assert!(s.put_many(&pairs).iter().all(Result::is_ok));
        assert_eq!(s.len(), 32);
        let keys: Vec<u64> = (0..34u64).collect();
        let got = s.get_many(&keys).unwrap();
        for k in 0..32usize {
            assert_eq!(got[k].as_deref(), Some(&values[k].1[..]), "key {k}");
        }
        assert_eq!(got[32], None);
        assert_eq!(got[33], None);
    }

    #[test]
    fn deletes_recycle_capacity() {
        let mut s = store(16, 64);
        for k in 0..10u64 {
            s.put(k, &[k as u8; 32]).unwrap();
        }
        for k in 0..10u64 {
            s.delete(k).unwrap();
        }
        // All capacity back: another 10 puts must succeed.
        for k in 100..110u64 {
            s.put(k, &[1u8; 32]).unwrap();
        }
        assert_eq!(s.len(), 10);
    }
}
