//! FP-Tree (Oukid et al., SIGMOD '16): a persistent B-tree whose NVM
//! leaves hold **unsorted** slots selected through a bitmap and a
//! one-byte-per-slot fingerprint array, with inner nodes in DRAM.
//!
//! The write-friendly trick: an insert touches only (a) the slot bytes,
//! (b) one fingerprint byte, (c) one bitmap byte — no shifting. A
//! delete clears a single bitmap bit. That is why FP-Tree sits near the
//! bottom of the paper's Figure 12 even without E2-NVM.

use crate::store::{NodeId, NodeStore, Result, StoreError};
use crate::traits::NvmKvStore;
use std::collections::BTreeMap;

/// Leaf layout (all offsets in bytes):
/// `[bitmap: 8][fingerprints: SLOTS][slot 0][slot 1]...`
/// where each slot is `[key: 8][vlen: 2][value: max_value]`.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    slots: usize,
    max_value: usize,
}

impl Geometry {
    fn slot_bytes(&self) -> usize {
        10 + self.max_value
    }
    fn fingerprints_off(&self) -> usize {
        8
    }
    fn slot_off(&self, i: usize) -> usize {
        8 + self.slots + i * self.slot_bytes()
    }
}

fn fingerprint(key: u64) -> u8 {
    // A cheap key hash, nonzero so an empty fingerprint byte never
    // accidentally matches.
    let h = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    ((h >> 56) as u8) | 1
}

/// DRAM mirror of one leaf's lookup metadata.
#[derive(Debug, Clone)]
struct LeafMeta {
    node: NodeId,
    bitmap: u64,
    fingerprints: Vec<u8>,
    keys: Vec<u64>, // per-slot key mirror (valid where bitmap bit set)
}

impl LeafMeta {
    fn occupied(&self) -> usize {
        self.bitmap.count_ones() as usize
    }

    fn keys_min(&self) -> Option<u64> {
        (0..self.keys.len())
            .filter(|&i| self.bitmap & (1 << i) != 0)
            .map(|i| self.keys[i])
            .min()
    }
}

/// The FP-Tree.
pub struct FpTree<S: NodeStore> {
    store: S,
    geo: Geometry,
    /// DRAM directory: lower bound -> leaf metadata.
    leaves: BTreeMap<u64, LeafMeta>,
}

impl<S: NodeStore> FpTree<S> {
    /// Create over a node store; `max_value` bounds value length.
    ///
    /// # Panics
    /// Panics if a node cannot hold at least two slots.
    pub fn new(store: S, max_value: usize) -> Self {
        let node_bytes = store.node_bytes();
        // Solve slots from: 8 + slots + slots*(10+max_value) <= node_bytes.
        let slots = ((node_bytes - 8) / (11 + max_value)).min(64);
        assert!(
            slots >= 2,
            "FpTree: node of {node_bytes} bytes holds fewer than 2 slots"
        );
        Self {
            store,
            geo: Geometry { slots, max_value },
            leaves: BTreeMap::new(),
        }
    }

    /// Rebuild the DRAM directory and per-leaf metadata mirrors from
    /// the persisted leaf images (bitmap + fingerprints + slot keys) —
    /// the recovery procedure the original FP-Tree paper describes:
    /// only leaves live on persistent memory; everything else is
    /// reconstructed by scanning them.
    pub fn recover(mut store: S, nodes: &[NodeId], max_value: usize) -> Result<Self> {
        let node_bytes = store.node_bytes();
        let slots = ((node_bytes - 8) / (11 + max_value)).min(64);
        let geo = Geometry { slots, max_value };
        let mut leaves = BTreeMap::new();
        for &node in nodes {
            let image = store.read(node)?;
            let bitmap = u64::from_le_bytes(image[..8].try_into().expect("8 bytes"))
                & if slots == 64 {
                    u64::MAX
                } else {
                    (1 << slots) - 1
                };
            let mut meta = LeafMeta {
                node,
                bitmap,
                fingerprints: vec![0; slots],
                keys: vec![0; slots],
            };
            for i in 0..slots {
                if bitmap & (1 << i) != 0 {
                    meta.fingerprints[i] = image[geo.fingerprints_off() + i];
                    let off = geo.slot_off(i);
                    meta.keys[i] =
                        u64::from_le_bytes(image[off..off + 8].try_into().expect("8 bytes"));
                }
            }
            match meta.keys_min() {
                Some(lower) => {
                    leaves.insert(lower, meta);
                }
                None => store.free(node)?,
            }
        }
        Ok(Self { store, geo, leaves })
    }

    /// Consume the structure, returning the node store (simulates a
    /// crash: all DRAM state is dropped; NVM contents survive).
    pub fn into_store(self) -> S {
        self.store
    }

    /// The NVM nodes currently owned by the tree (recovery metadata).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.leaves.values().map(|m| m.node).collect()
    }

    fn leaf_for(&self, key: u64) -> Option<u64> {
        self.leaves.range(..=key).next_back().map(|(&lb, _)| lb)
    }

    fn find_slot(&self, meta: &LeafMeta, key: u64) -> Option<usize> {
        let fp = fingerprint(key);
        (0..self.geo.slots).find(|&i| {
            meta.bitmap & (1 << i) != 0 && meta.fingerprints[i] == fp && meta.keys[i] == key
        })
    }

    fn write_slot(&mut self, lower: u64, slot: usize, key: u64, value: &[u8]) -> Result<()> {
        let geo = self.geo;
        let meta = self.leaves.get_mut(&lower).expect("leaf exists");
        let node = meta.node;
        // Slot payload.
        let mut payload = Vec::with_capacity(10 + value.len());
        payload.extend_from_slice(&key.to_le_bytes());
        payload.extend_from_slice(&(value.len() as u16).to_le_bytes());
        payload.extend_from_slice(value);
        // Update DRAM mirror first.
        meta.bitmap |= 1 << slot;
        meta.fingerprints[slot] = fingerprint(key);
        meta.keys[slot] = key;
        let bitmap = meta.bitmap;
        let fp = fingerprint(key);
        // Three small NVM writes: slot, fingerprint, bitmap (crash
        // consistency order: slot before bitmap commit).
        self.store.write_at(node, geo.slot_off(slot), &payload)?;
        self.store
            .write_at(node, geo.fingerprints_off() + slot, &[fp])?;
        self.store.write_at(node, 0, &bitmap.to_le_bytes())?;
        Ok(())
    }

    fn split(&mut self, lower: u64) -> Result<()> {
        let geo = self.geo;
        let node = self.leaves.get(&lower).expect("leaf exists").node;
        // Collect live entries from NVM.
        let image = self.store.read(node)?;
        let meta = self.leaves.get(&lower).expect("leaf exists");
        let mut entries: Vec<(u64, Vec<u8>)> = (0..geo.slots)
            .filter(|&i| meta.bitmap & (1 << i) != 0)
            .map(|i| {
                let off = geo.slot_off(i);
                let key = u64::from_le_bytes(image[off..off + 8].try_into().expect("8 bytes"));
                let vlen = u16::from_le_bytes(image[off + 8..off + 10].try_into().expect("2 bytes"))
                    as usize;
                (key, image[off + 10..off + 10 + vlen].to_vec())
            })
            .collect();
        entries.sort_by_key(|(k, _)| *k);
        let right = entries.split_off(entries.len() / 2);
        let right_lower = right[0].0;
        // Rewrite the left leaf compacted and build the right leaf.
        let left_node = node;
        let right_node = self.store.alloc()?;
        self.leaves.remove(&lower);
        for (lb, node, list) in [
            (lower, left_node, entries),
            (right_lower, right_node, right),
        ] {
            let mut m = LeafMeta {
                node,
                bitmap: 0,
                fingerprints: vec![0; geo.slots],
                keys: vec![0; geo.slots],
            };
            let mut image = vec![0u8; geo.slot_off(geo.slots)];
            for (i, (k, v)) in list.iter().enumerate() {
                m.bitmap |= 1 << i;
                m.fingerprints[i] = fingerprint(*k);
                m.keys[i] = *k;
                let off = geo.slot_off(i);
                image[off..off + 8].copy_from_slice(&k.to_le_bytes());
                image[off + 8..off + 10].copy_from_slice(&(v.len() as u16).to_le_bytes());
                image[off + 10..off + 10 + v.len()].copy_from_slice(v);
                image[geo.fingerprints_off() + i] = m.fingerprints[i];
            }
            image[..8].copy_from_slice(&m.bitmap.to_le_bytes());
            self.store.write(node, &image)?;
            self.leaves.insert(lb, m);
        }
        Ok(())
    }
}

impl<S: NodeStore> NvmKvStore for FpTree<S> {
    fn name(&self) -> &'static str {
        "FP-Tree"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        if value.len() > self.geo.max_value {
            return Err(StoreError::Sim(e2nvm_sim::SimError::SizeMismatch {
                expected: self.geo.max_value,
                actual: value.len(),
            }));
        }
        let lower = match self.leaf_for(key) {
            Some(lb) => lb,
            None => {
                if let Some((&first, _)) = self.leaves.iter().next() {
                    let meta = self.leaves.remove(&first).expect("leaf exists");
                    self.leaves.insert(key, meta);
                    key
                } else {
                    let node = self.store.alloc()?;
                    // Persist an empty bitmap so reads see a valid leaf.
                    self.store.write_at(node, 0, &0u64.to_le_bytes())?;
                    self.leaves.insert(
                        key,
                        LeafMeta {
                            node,
                            bitmap: 0,
                            fingerprints: vec![0; self.geo.slots],
                            keys: vec![0; self.geo.slots],
                        },
                    );
                    key
                }
            }
        };
        let meta = self.leaves.get(&lower).expect("leaf exists");
        if let Some(slot) = self.find_slot(meta, key) {
            // In-place value update: rewrite just the slot.
            return self.write_slot(lower, slot, key, value);
        }
        if meta.occupied() == self.geo.slots {
            self.split(lower)?;
            // Re-route after the split.
            let lower = self.leaf_for(key).expect("leaf after split");
            let meta = self.leaves.get(&lower).expect("leaf exists");
            let slot = (0..self.geo.slots)
                .find(|&i| meta.bitmap & (1 << i) == 0)
                .expect("split leaves free slots");
            return self.write_slot(lower, slot, key, value);
        }
        let slot = (0..self.geo.slots)
            .find(|&i| meta.bitmap & (1 << i) == 0)
            .expect("free slot exists");
        self.write_slot(lower, slot, key, value)
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let Some(lower) = self.leaf_for(key) else {
            return Ok(None);
        };
        let meta = self.leaves.get(&lower).expect("leaf exists");
        let Some(slot) = self.find_slot(meta, key) else {
            return Ok(None);
        };
        let node = meta.node;
        let off = self.geo.slot_off(slot);
        let image = self.store.read(node)?;
        let vlen =
            u16::from_le_bytes(image[off + 8..off + 10].try_into().expect("2 bytes")) as usize;
        Ok(Some(image[off + 10..off + 10 + vlen].to_vec()))
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        let Some(lower) = self.leaf_for(key) else {
            return Ok(false);
        };
        let meta = self.leaves.get(&lower).expect("leaf exists");
        let Some(slot) = self.find_slot(meta, key) else {
            return Ok(false);
        };
        let meta = self.leaves.get_mut(&lower).expect("leaf exists");
        meta.bitmap &= !(1 << slot);
        let bitmap = meta.bitmap;
        let node = meta.node;
        // One 8-byte bitmap write — deletes are nearly free.
        self.store.write_at(node, 0, &bitmap.to_le_bytes())?;
        if bitmap == 0 {
            let meta = self.leaves.remove(&lower).expect("leaf exists");
            self.store.free(meta.node)?;
        }
        Ok(true)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let start = self.leaf_for(lo).unwrap_or(lo);
        let lowers: Vec<u64> = self.leaves.range(start..=hi).map(|(&lb, _)| lb).collect();
        let mut out = Vec::new();
        for lower in lowers {
            let meta = self.leaves.get(&lower).expect("leaf exists");
            let node = meta.node;
            let live: Vec<usize> = (0..self.geo.slots)
                .filter(|&i| {
                    meta.bitmap & (1 << i) != 0 && meta.keys[i] >= lo && meta.keys[i] <= hi
                })
                .collect();
            if live.is_empty() {
                continue;
            }
            let image = self.store.read(node)?;
            for i in live {
                let off = self.geo.slot_off(i);
                let key = u64::from_le_bytes(image[off..off + 8].try_into().expect("8 bytes"));
                let vlen = u16::from_le_bytes(image[off + 8..off + 10].try_into().expect("2 bytes"))
                    as usize;
                out.push((key, image[off + 10..off + 10 + vlen].to_vec()));
            }
        }
        out.sort_by_key(|(k, _)| *k);
        Ok(out)
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.store.stats()
    }

    fn reset_stats(&mut self) {
        self.store.reset_stats();
    }

    fn maintenance(&mut self) {
        self.store.maintenance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree::BPlusTree;
    use crate::store::DirectNodeStore;
    use crate::traits::check_against_shadow;
    use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};

    fn direct_store(segments: usize, seg_bytes: usize) -> DirectNodeStore {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(segments)
                .build()
                .unwrap(),
        );
        DirectNodeStore::new(MemoryController::without_wear_leveling(dev))
    }

    #[test]
    fn basic_crud() {
        let mut t = FpTree::new(direct_store(16, 256), 16);
        t.put(9, b"nine").unwrap();
        t.put(2, b"two").unwrap();
        assert_eq!(t.get(9).unwrap().unwrap(), b"nine");
        assert_eq!(t.get(5).unwrap(), None);
        t.put(9, b"NINE!").unwrap();
        assert_eq!(t.get(9).unwrap().unwrap(), b"NINE!");
        assert!(t.delete(9).unwrap());
        assert_eq!(t.get(9).unwrap(), None);
    }

    #[test]
    fn splits_and_scans() {
        let mut t = FpTree::new(direct_store(64, 128), 8);
        for k in 0..80u64 {
            t.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(t.leaves.len() > 1);
        let keys: Vec<u64> = t
            .scan(0, u64::MAX)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, (0..80).collect::<Vec<_>>());
    }

    #[test]
    fn shadow_stress() {
        let mut t = FpTree::new(direct_store(128, 256), 16);
        check_against_shadow(&mut t, 800, 12, 11).unwrap();
    }

    #[test]
    fn inserts_flip_fewer_bits_than_btree() {
        // The headline property: unsorted slot inserts beat sorted-leaf
        // shifting.
        let mut fp = FpTree::new(direct_store(64, 256), 8);
        let mut bt = BPlusTree::new(direct_store(64, 256));
        // Insert keys in descending order (stresses sorting) with
        // distinct values (so shifts move real content).
        for k in (0..60u64).rev() {
            let v = [(k as u8).wrapping_mul(53) ^ 0x5A; 8];
            fp.put(k, &v).unwrap();
            bt.put(k, &v).unwrap();
        }
        let fp_flips = fp.stats().bits_flipped;
        let bt_flips = bt.stats().bits_flipped;
        assert!(fp_flips < bt_flips / 2, "fp={fp_flips} bt={bt_flips}");
    }

    #[test]
    fn delete_is_single_bitmap_write() {
        let mut t = FpTree::new(direct_store(16, 256), 8);
        for k in 0..5u64 {
            t.put(k, &[1u8; 8]).unwrap();
        }
        t.reset_stats();
        t.delete(3).unwrap();
        let s = t.stats();
        assert!(
            s.bits_flipped <= 8,
            "delete flipped {} bits",
            s.bits_flipped
        );
    }

    #[test]
    fn fingerprint_nonzero_and_spread() {
        let fps: std::collections::HashSet<u8> = (0..256u64).map(fingerprint).collect();
        assert!(fps.len() > 64, "fingerprints poorly distributed");
        assert!(!fps.contains(&0));
    }
}
