//! A red-black tree — the paper's data index ("RB-Tree.put(D, A)" in
//! Algorithm 1). Arena-based (indices instead of pointers, no unsafe),
//! keys are `u64`, values generic.

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node<V> {
    key: u64,
    value: V,
    color: Color,
    parent: usize,
    left: usize,
    right: usize,
}

/// A red-black tree mapping `u64` keys to values.
#[derive(Debug, Clone)]
pub struct RbTree<V> {
    nodes: Vec<Node<V>>,
    root: usize,
    free: Vec<usize>,
    len: usize,
}

impl<V> Default for RbTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RbTree<V> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn color(&self, x: usize) -> Color {
        if x == NIL {
            Color::Black
        } else {
            self.nodes[x].color
        }
    }

    fn find(&self, key: u64) -> usize {
        let mut cur = self.root;
        while cur != NIL {
            let node = &self.nodes[cur];
            cur = match key.cmp(&node.key) {
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
                std::cmp::Ordering::Equal => return cur,
            };
        }
        NIL
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<&V> {
        let idx = self.find(key);
        (idx != NIL).then(|| &self.nodes[idx].value)
    }

    /// Look up a key mutably.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let idx = self.find(key);
        (idx != NIL).then(|| &mut self.nodes[idx].value)
    }

    /// Whether a key is present.
    pub fn contains(&self, key: u64) -> bool {
        self.find(key) != NIL
    }

    fn alloc(&mut self, key: u64, value: V, parent: usize) -> usize {
        let node = Node {
            key,
            value,
            color: Color::Red,
            parent,
            left: NIL,
            right: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn rotate_left(&mut self, x: usize) {
        let y = self.nodes[x].right;
        debug_assert_ne!(y, NIL);
        let y_left = self.nodes[y].left;
        self.nodes[x].right = y_left;
        if y_left != NIL {
            self.nodes[y_left].parent = x;
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].left == x {
            self.nodes[xp].left = y;
        } else {
            self.nodes[xp].right = y;
        }
        self.nodes[y].left = x;
        self.nodes[x].parent = y;
    }

    fn rotate_right(&mut self, x: usize) {
        let y = self.nodes[x].left;
        debug_assert_ne!(y, NIL);
        let y_right = self.nodes[y].right;
        self.nodes[x].left = y_right;
        if y_right != NIL {
            self.nodes[y_right].parent = x;
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].left == x {
            self.nodes[xp].left = y;
        } else {
            self.nodes[xp].right = y;
        }
        self.nodes[y].right = x;
        self.nodes[x].parent = y;
    }

    /// Insert or replace. Returns the previous value if the key existed.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            let node = &self.nodes[cur];
            cur = match key.cmp(&node.key) {
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
                std::cmp::Ordering::Equal => {
                    return Some(std::mem::replace(&mut self.nodes[cur].value, value));
                }
            };
        }
        let idx = self.alloc(key, value, parent);
        if parent == NIL {
            self.root = idx;
        } else if key < self.nodes[parent].key {
            self.nodes[parent].left = idx;
        } else {
            self.nodes[parent].right = idx;
        }
        self.len += 1;
        self.insert_fixup(idx);
        None
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while self.color(self.nodes[z].parent) == Color::Red {
            let p = self.nodes[z].parent;
            let g = self.nodes[p].parent;
            if p == self.nodes[g].left {
                let u = self.nodes[g].right;
                if self.color(u) == Color::Red {
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    z = g;
                } else {
                    if z == self.nodes[p].right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.rotate_right(g);
                }
            } else {
                let u = self.nodes[g].left;
                if self.color(u) == Color::Red {
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    z = g;
                } else {
                    if z == self.nodes[p].left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.rotate_left(g);
                }
            }
        }
        let root = self.root;
        self.nodes[root].color = Color::Black;
    }

    fn minimum(&self, mut x: usize) -> usize {
        while self.nodes[x].left != NIL {
            x = self.nodes[x].left;
        }
        x
    }

    fn transplant(&mut self, u: usize, v: usize) {
        let up = self.nodes[u].parent;
        if up == NIL {
            self.root = v;
        } else if self.nodes[up].left == u {
            self.nodes[up].left = v;
        } else {
            self.nodes[up].right = v;
        }
        if v != NIL {
            self.nodes[v].parent = up;
        }
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V>
    where
        V: Default,
    {
        let z = self.find(key);
        if z == NIL {
            return None;
        }
        let mut fix_parent;
        let (mut x, y_original_color);
        let y;
        if self.nodes[z].left == NIL {
            x = self.nodes[z].right;
            fix_parent = self.nodes[z].parent;
            y_original_color = self.nodes[z].color;
            self.transplant(z, x);
        } else if self.nodes[z].right == NIL {
            x = self.nodes[z].left;
            fix_parent = self.nodes[z].parent;
            y_original_color = self.nodes[z].color;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.nodes[z].right);
            y_original_color = self.nodes[y].color;
            x = self.nodes[y].right;
            if self.nodes[y].parent == z {
                fix_parent = y;
            } else {
                fix_parent = self.nodes[y].parent;
                self.transplant(y, x);
                let zr = self.nodes[z].right;
                self.nodes[y].right = zr;
                self.nodes[zr].parent = y;
            }
            self.transplant(z, y);
            let zl = self.nodes[z].left;
            self.nodes[y].left = zl;
            self.nodes[zl].parent = y;
            self.nodes[y].color = self.nodes[z].color;
        }
        let value = std::mem::take(&mut self.nodes[z].value);
        self.free.push(z);
        self.len -= 1;
        if y_original_color == Color::Black {
            self.delete_fixup(&mut x, &mut fix_parent);
        }
        Some(value)
    }

    fn delete_fixup(&mut self, x: &mut usize, parent: &mut usize) {
        while *x != self.root && self.color(*x) == Color::Black {
            let p = *parent;
            if p == NIL {
                break;
            }
            if *x == self.nodes[p].left {
                let mut w = self.nodes[p].right;
                if self.color(w) == Color::Red {
                    self.nodes[w].color = Color::Black;
                    self.nodes[p].color = Color::Red;
                    self.rotate_left(p);
                    w = self.nodes[p].right;
                }
                if self.color(self.nodes[w].left) == Color::Black
                    && self.color(self.nodes[w].right) == Color::Black
                {
                    self.nodes[w].color = Color::Red;
                    *x = p;
                    *parent = self.nodes[p].parent;
                } else {
                    if self.color(self.nodes[w].right) == Color::Black {
                        let wl = self.nodes[w].left;
                        if wl != NIL {
                            self.nodes[wl].color = Color::Black;
                        }
                        self.nodes[w].color = Color::Red;
                        self.rotate_right(w);
                        w = self.nodes[p].right;
                    }
                    self.nodes[w].color = self.nodes[p].color;
                    self.nodes[p].color = Color::Black;
                    let wr = self.nodes[w].right;
                    if wr != NIL {
                        self.nodes[wr].color = Color::Black;
                    }
                    self.rotate_left(p);
                    *x = self.root;
                    *parent = NIL;
                }
            } else {
                let mut w = self.nodes[p].left;
                if self.color(w) == Color::Red {
                    self.nodes[w].color = Color::Black;
                    self.nodes[p].color = Color::Red;
                    self.rotate_right(p);
                    w = self.nodes[p].left;
                }
                if self.color(self.nodes[w].right) == Color::Black
                    && self.color(self.nodes[w].left) == Color::Black
                {
                    self.nodes[w].color = Color::Red;
                    *x = p;
                    *parent = self.nodes[p].parent;
                } else {
                    if self.color(self.nodes[w].left) == Color::Black {
                        let wr = self.nodes[w].right;
                        if wr != NIL {
                            self.nodes[wr].color = Color::Black;
                        }
                        self.nodes[w].color = Color::Red;
                        self.rotate_left(w);
                        w = self.nodes[p].left;
                    }
                    self.nodes[w].color = self.nodes[p].color;
                    self.nodes[p].color = Color::Black;
                    let wl = self.nodes[w].left;
                    if wl != NIL {
                        self.nodes[wl].color = Color::Black;
                    }
                    self.rotate_right(p);
                    *x = self.root;
                    *parent = NIL;
                }
            }
        }
        if *x != NIL {
            self.nodes[*x].color = Color::Black;
        }
    }

    /// In-order iteration over `(key, &value)` pairs with keys in
    /// `[lo, hi]`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, &V)> {
        let mut out = Vec::new();
        self.range_rec(self.root, lo, hi, &mut out);
        out
    }

    fn range_rec<'a>(&'a self, x: usize, lo: u64, hi: u64, out: &mut Vec<(u64, &'a V)>) {
        if x == NIL {
            return;
        }
        let node = &self.nodes[x];
        if node.key > lo {
            self.range_rec(node.left, lo, hi, out);
        }
        if node.key >= lo && node.key <= hi {
            out.push((node.key, &node.value));
        }
        if node.key < hi {
            self.range_rec(node.right, lo, hi, out);
        }
    }

    /// Like [`RbTree::range`], but stop after `limit` entries — the
    /// in-order walk short-circuits instead of visiting the rest of
    /// the range, which is what makes paged scans over huge ranges
    /// O(limit + log n) per page instead of O(range).
    pub fn range_limit(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, &V)> {
        let mut out = Vec::new();
        if limit > 0 {
            self.range_limit_rec(self.root, lo, hi, limit, &mut out);
        }
        out
    }

    fn range_limit_rec<'a>(
        &'a self,
        x: usize,
        lo: u64,
        hi: u64,
        limit: usize,
        out: &mut Vec<(u64, &'a V)>,
    ) {
        if x == NIL || out.len() >= limit {
            return;
        }
        let node = &self.nodes[x];
        if node.key > lo {
            self.range_limit_rec(node.left, lo, hi, limit, out);
        }
        if out.len() >= limit {
            return;
        }
        if node.key >= lo && node.key <= hi {
            out.push((node.key, &node.value));
            if out.len() >= limit {
                return;
            }
        }
        if node.key < hi {
            self.range_limit_rec(node.right, lo, hi, limit, out);
        }
    }

    /// All keys in order (diagnostics/tests).
    pub fn keys(&self) -> Vec<u64> {
        self.range(0, u64::MAX)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// Validate the red-black invariants: root is black, no red node has
    /// a red child, and every root-to-leaf path has the same black
    /// height. Returns the black height.
    pub fn check_invariants(&self) -> Result<usize, String> {
        if self.root != NIL && self.nodes[self.root].color != Color::Black {
            return Err("root is red".into());
        }
        self.check_rec(self.root, u64::MIN, u64::MAX)
    }

    fn check_rec(&self, x: usize, lo: u64, hi: u64) -> Result<usize, String> {
        if x == NIL {
            return Ok(1);
        }
        let node = &self.nodes[x];
        if node.key < lo || node.key > hi {
            return Err(format!("BST violation at key {}", node.key));
        }
        if node.color == Color::Red
            && (self.color(node.left) == Color::Red || self.color(node.right) == Color::Red)
        {
            return Err(format!("red-red violation at key {}", node.key));
        }
        let lh = self.check_rec(node.left, lo, node.key.saturating_sub(1))?;
        let rh = self.check_rec(node.right, node.key.saturating_add(1), hi)?;
        if lh != rh {
            return Err(format!("black-height mismatch at key {}", node.key));
        }
        Ok(lh + usize::from(node.color == Color::Black))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn insert_get_basic() {
        let mut t = RbTree::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(5, "five"), None);
        assert_eq!(t.insert(3, "three"), None);
        assert_eq!(t.insert(8, "eight"), None);
        assert_eq!(t.get(3), Some(&"three"));
        assert_eq!(t.get(9), None);
        assert_eq!(t.insert(3, "THREE"), Some("three"));
        assert_eq!(t.len(), 3);
        t.check_invariants().unwrap();
    }

    #[test]
    fn sequential_insert_stays_balanced() {
        let mut t = RbTree::new();
        for k in 0..1000u64 {
            t.insert(k, k * 2);
            if k % 100 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 1000);
        assert_eq!(t.keys(), (0..1000).collect::<Vec<_>>());
        // Black height of a balanced 1000-node RB tree is small.
        let bh = t.check_invariants().unwrap();
        assert!(bh <= 12, "black height {bh}");
    }

    #[test]
    fn random_insert_delete_stress() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut t = RbTree::new();
        let mut keys: Vec<u64> = (0..500).collect();
        keys.shuffle(&mut rng);
        for &k in &keys {
            t.insert(k, k as i64);
        }
        t.check_invariants().unwrap();
        keys.shuffle(&mut rng);
        let mut expected: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        for (i, &k) in keys.iter().take(300).enumerate() {
            assert_eq!(t.remove(k), Some(k as i64), "remove {k}");
            expected.remove(&k);
            if i % 25 == 0 {
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("after removing {k}: {e}"));
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 200);
        assert_eq!(t.keys(), expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn remove_absent_returns_none() {
        let mut t: RbTree<i32> = RbTree::new();
        t.insert(1, 1);
        assert_eq!(t.remove(99), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn range_query() {
        let mut t = RbTree::new();
        for k in [10u64, 20, 30, 40, 50] {
            t.insert(k, k);
        }
        let got: Vec<u64> = t.range(15, 45).into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, vec![20, 30, 40]);
        assert!(t.range(60, 70).is_empty());
        // range_limit agrees with range, truncated, at every limit.
        for limit in 0..=4 {
            let limited: Vec<u64> = t
                .range_limit(15, 45, limit)
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let full: Vec<u64> = t
                .range(15, 45)
                .into_iter()
                .map(|(k, _)| k)
                .take(limit)
                .collect();
            assert_eq!(limited, full, "limit {limit}");
        }
        let all: Vec<u64> = t.range(0, u64::MAX).into_iter().map(|(k, _)| k).collect();
        assert_eq!(all, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn arena_reuse_after_delete() {
        let mut t = RbTree::new();
        for k in 0..100u64 {
            t.insert(k, ());
        }
        let cap = t.nodes.len();
        for k in 0..100u64 {
            t.remove(k);
        }
        for k in 100..200u64 {
            t.insert(k, ());
        }
        assert_eq!(t.nodes.len(), cap, "arena should reuse freed slots");
        t.check_invariants().unwrap();
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = RbTree::new();
        t.insert(7, vec![1u8]);
        t.get_mut(7).unwrap().push(2);
        assert_eq!(t.get(7), Some(&vec![1u8, 2]));
    }
}
