//! # e2nvm-kvstore — persistent KV stores and NVM index structures
//!
//! Two roles in the reproduction:
//!
//! 1. The paper's own system (Figure 3): [`E2KvStore`] — a DRAM
//!    red-black tree ([`RbTree`]) indexing values placed on NVM by the
//!    E2-NVM engine.
//! 2. The augmentation targets of Figure 12: [`BPlusTree`], [`WiscKey`],
//!    [`PathHashing`], [`FpTree`], and [`NoveLsm`], each runnable over a
//!    [`DirectNodeStore`] (update-in-place, arbitrary placement) or an
//!    [`E2NodeStore`] (copy-on-write placement through E2-NVM) so "bare
//!    vs plugged into E2-NVM" is a one-line switch.

#![warn(missing_docs)]

pub mod btree;
pub mod cache;
pub mod e2store;
pub mod fptree;
pub mod novelsm;
pub mod path_hashing;
pub mod rbtree;
pub mod store;
pub mod telemetry;
pub mod traits;
pub mod wisckey;

pub use btree::BPlusTree;
pub use cache::{CacheConfig, CacheConfigBuilder, CacheStats, CachedKvStore, HotCache};
pub use e2store::{E2KvStore, RecoveryReport, ShardedE2KvStore, WearSummary};
pub use fptree::FpTree;
pub use novelsm::NoveLsm;
pub use path_hashing::PathHashing;
pub use rbtree::RbTree;
pub use store::{DirectNodeStore, E2NodeStore, NodeId, NodeStore, StoreError};
pub use telemetry::{CacheTelemetry, StoreTelemetry};
pub use traits::NvmKvStore;
pub use wisckey::WiscKey;
