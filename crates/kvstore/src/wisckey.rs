//! WiscKey (Lu et al., FAST '16 / TOS '17): key-value separation. Keys
//! live in a small DRAM-side index (here: the crate's red-black tree,
//! mirroring the paper's system model); values are appended to a
//! sequential **value log** on NVM. Updates never rewrite in place —
//! they append and garbage-collect, which minimizes write amplification
//! (the property the paper's §2.3 contrasts with bit-flip reduction).

use crate::rbtree::RbTree;
use crate::store::{NodeId, NodeStore, Result, StoreError};
use crate::traits::NvmKvStore;
use std::collections::VecDeque;

/// Value-log record: `[key: 8][vlen: 2][value]`.
const HEADER: usize = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ValueLoc {
    node_slot: usize, // index into `log` (the open segment chain)
    offset: usize,
    len: usize,
}

/// The WiscKey-style store.
pub struct WiscKey<S: NodeStore> {
    store: S,
    /// DRAM key index: key -> location in the value log.
    index: RbTree<ValueLoc>,
    /// Log segments in append order (front = oldest).
    log: VecDeque<(NodeId, usize)>, // (node, bytes used)
    /// Live bytes per log slot, for GC victim choice.
    live_bytes: VecDeque<usize>,
}

impl<S: NodeStore> WiscKey<S> {
    /// An empty store.
    pub fn new(store: S) -> Self {
        Self {
            store,
            index: RbTree::new(),
            log: VecDeque::new(),
            live_bytes: VecDeque::new(),
        }
    }

    fn node_bytes(&self) -> usize {
        self.store.node_bytes()
    }

    fn append(&mut self, key: u64, value: &[u8]) -> Result<ValueLoc> {
        let rec_len = HEADER + value.len();
        let need_new = match self.log.back() {
            Some(&(_, used)) => used + rec_len > self.node_bytes(),
            None => true,
        };
        if need_new {
            if self.store.free_capacity() == 0 {
                self.collect_garbage()?;
            }
            let node = self.store.alloc()?;
            self.log.push_back((node, 0));
            self.live_bytes.push_back(0);
        }
        let slot = self.log.len() - 1;
        let (node, used) = *self.log.back().expect("log nonempty");
        let mut rec = Vec::with_capacity(rec_len);
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&(value.len() as u16).to_le_bytes());
        rec.extend_from_slice(value);
        self.store.write_at(node, used, &rec)?;
        self.log.back_mut().expect("log nonempty").1 = used + rec_len;
        *self.live_bytes.back_mut().expect("log nonempty") += rec_len;
        Ok(ValueLoc {
            node_slot: slot,
            offset: used + HEADER,
            len: value.len(),
        })
    }

    /// Reclaim the log segment with the least live data by re-appending
    /// its live records.
    fn collect_garbage(&mut self) -> Result<()> {
        if self.log.len() < 2 {
            return Err(StoreError::OutOfSpace);
        }
        // Victim: the fullest-of-garbage (lowest live bytes) among all
        // but the open tail segment.
        let victim_slot = (0..self.log.len() - 1)
            .min_by_key(|&s| self.live_bytes[s])
            .expect("at least one sealed segment");
        let (victim_node, victim_used) = self.log[victim_slot];
        let image = self.store.read(victim_node)?;
        // Collect live records of the victim.
        let mut live: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut off = 0;
        while off + HEADER <= victim_used {
            let key = u64::from_le_bytes(image[off..off + 8].try_into().expect("8 bytes"));
            let vlen =
                u16::from_le_bytes(image[off + 8..off + 10].try_into().expect("2 bytes")) as usize;
            let loc = self.index.get(key).copied();
            if loc
                == Some(ValueLoc {
                    node_slot: victim_slot,
                    offset: off + HEADER,
                    len: vlen,
                })
            {
                live.push((key, image[off + HEADER..off + HEADER + vlen].to_vec()));
            }
            off += HEADER + vlen;
        }
        // Remove the victim and renumber slots.
        self.log.remove(victim_slot);
        self.live_bytes.remove(victim_slot);
        self.index_renumber_after_removal(victim_slot);
        self.store.free(victim_node)?;
        // Re-append the survivors.
        for (key, value) in live {
            let loc = self.append(key, &value)?;
            self.index.insert(key, loc);
        }
        Ok(())
    }

    fn index_renumber_after_removal(&mut self, removed_slot: usize) {
        // Slots above the removed one shift down by one.
        let keys = self.index.keys();
        for key in keys {
            if let Some(loc) = self.index.get_mut(key) {
                if loc.node_slot > removed_slot {
                    loc.node_slot -= 1;
                }
            }
        }
    }

    /// Log segments currently held (diagnostics).
    pub fn log_segments(&self) -> usize {
        self.log.len()
    }
}

impl<S: NodeStore> NvmKvStore for WiscKey<S> {
    fn name(&self) -> &'static str {
        "WiscKey"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        if HEADER + value.len() > self.node_bytes() {
            return Err(StoreError::Sim(e2nvm_sim::SimError::SizeMismatch {
                expected: self.node_bytes() - HEADER,
                actual: value.len(),
            }));
        }
        // Old location (if any) becomes garbage.
        if let Some(old) = self.index.get(key).copied() {
            self.live_bytes[old.node_slot] =
                self.live_bytes[old.node_slot].saturating_sub(HEADER + old.len);
        }
        let loc = self.append(key, value)?;
        self.index.insert(key, loc);
        Ok(())
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let Some(loc) = self.index.get(key).copied() else {
            return Ok(None);
        };
        let (node, _) = self.log[loc.node_slot];
        let image = self.store.read(node)?;
        Ok(Some(image[loc.offset..loc.offset + loc.len].to_vec()))
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        let Some(loc) = self.index.remove(key) else {
            return Ok(false);
        };
        // Pure index operation: the log record becomes garbage.
        self.live_bytes[loc.node_slot] =
            self.live_bytes[loc.node_slot].saturating_sub(HEADER + loc.len);
        Ok(true)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let locs: Vec<(u64, ValueLoc)> = self
            .index
            .range(lo, hi)
            .into_iter()
            .map(|(k, loc)| (k, *loc))
            .collect();
        locs.into_iter()
            .map(|(k, loc)| {
                let (node, _) = self.log[loc.node_slot];
                let image = self.store.read(node)?;
                Ok((k, image[loc.offset..loc.offset + loc.len].to_vec()))
            })
            .collect()
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.store.stats()
    }

    fn reset_stats(&mut self) {
        self.store.reset_stats();
    }

    fn maintenance(&mut self) {
        self.store.maintenance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DirectNodeStore;
    use crate::traits::check_against_shadow;
    use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};

    fn wk(segments: usize, seg_bytes: usize) -> WiscKey<DirectNodeStore> {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(segments)
                .build()
                .unwrap(),
        );
        WiscKey::new(DirectNodeStore::new(
            MemoryController::without_wear_leveling(dev),
        ))
    }

    #[test]
    fn basic_crud() {
        let mut w = wk(8, 128);
        w.put(1, b"one").unwrap();
        w.put(2, b"two").unwrap();
        assert_eq!(w.get(1).unwrap().unwrap(), b"one");
        w.put(1, b"ONE").unwrap();
        assert_eq!(w.get(1).unwrap().unwrap(), b"ONE");
        assert!(w.delete(1).unwrap());
        assert_eq!(w.get(1).unwrap(), None);
        assert!(!w.delete(1).unwrap());
    }

    #[test]
    fn updates_append_not_overwrite() {
        let mut w = wk(8, 128);
        w.put(1, &[0xAAu8; 16]).unwrap();
        w.reset_stats();
        // Identical value appended to fresh (zeroed) space still writes
        // every set bit -> append semantics, not in-place skip.
        w.put(1, &[0xAAu8; 16]).unwrap();
        assert!(w.stats().bits_flipped > 0);
    }

    #[test]
    fn gc_reclaims_dead_space() {
        let mut w = wk(4, 64);
        // Keep overwriting a handful of keys far beyond raw capacity:
        // without GC this would exhaust 4 segments quickly.
        for round in 0..40u64 {
            for key in 0..3u64 {
                w.put(key, &[round as u8; 20]).unwrap();
            }
        }
        for key in 0..3u64 {
            assert_eq!(w.get(key).unwrap().unwrap(), vec![39u8; 20]);
        }
        assert!(w.log_segments() <= 4);
    }

    #[test]
    fn shadow_stress() {
        let mut w = wk(64, 256);
        check_against_shadow(&mut w, 800, 12, 17).unwrap();
    }

    #[test]
    fn scan_in_key_order() {
        let mut w = wk(8, 256);
        for k in [9u64, 3, 7, 1] {
            w.put(k, &k.to_le_bytes()).unwrap();
        }
        let keys: Vec<u64> = w.scan(2, 8).unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![3, 7]);
    }

    #[test]
    fn oversized_value_rejected() {
        let mut w = wk(4, 32);
        assert!(w.put(1, &[0u8; 30]).is_err());
    }
}
