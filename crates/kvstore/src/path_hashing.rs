//! Path Hashing (Zuo & Hua, MSST '17): a write-friendly hash scheme for
//! NVM with **zero writes for structural maintenance** — no chaining
//! pointers, no cuckoo evictions. Buckets form an inverted complete
//! binary tree; a key hashes to a leaf position and, on collision, may
//! instead use any ancestor position along its leaf-to-root *path*
//! (positions are shared between the two subtrees below them).
//!
//! Every insert/delete writes exactly one fixed-size cell, which keeps
//! its Figure 12 bar low even without E2-NVM.

use crate::store::{NodeId, NodeStore, Result, StoreError};
use crate::traits::NvmKvStore;

/// Cell layout: `[flag: 1][key: 8][vlen: 2][value: max_value]`.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    /// Leaf bucket count (power of two).
    leaves: usize,
    /// Tree levels above and including the leaves that accept
    /// placements (the "reserved levels" of the paper).
    levels: usize,
    max_value: usize,
}

impl Geometry {
    fn cell_bytes(&self) -> usize {
        11 + self.max_value
    }

    /// Total cells across levels: leaves + leaves/2 + ... (levels terms).
    fn total_cells(&self) -> usize {
        (0..self.levels).map(|l| self.leaves >> l).sum()
    }

    /// Flat cell index of position `pos` at `level`.
    fn cell_index(&self, level: usize, pos: usize) -> usize {
        let before: usize = (0..level).map(|l| self.leaves >> l).sum();
        before + pos
    }
}

fn hash_key(key: u64) -> u64 {
    key.wrapping_mul(0xD6E8_FEB8_6659_FD93).rotate_left(29) ^ key
}

/// The path-hashing table.
pub struct PathHashing<S: NodeStore> {
    store: S,
    geo: Geometry,
    nodes: Vec<NodeId>,
    cells_per_node: usize,
    /// DRAM occupancy + key mirror (the NVM flag byte is the truth; the
    /// mirror avoids device reads on probes).
    occupancy: Vec<Option<u64>>,
    len: usize,
}

impl<S: NodeStore> PathHashing<S> {
    /// Create with `leaves` leaf buckets (rounded up to a power of two)
    /// and `levels` shared path levels.
    ///
    /// # Panics
    /// Panics if the store cannot hold the table or parameters are
    /// degenerate.
    pub fn new(mut store: S, leaves: usize, levels: usize, max_value: usize) -> Result<Self> {
        assert!(
            leaves >= 2 && levels >= 1,
            "PathHashing: degenerate geometry"
        );
        let leaves = leaves.next_power_of_two();
        let levels = levels.min(leaves.trailing_zeros() as usize + 1);
        let geo = Geometry {
            leaves,
            levels,
            max_value,
        };
        let cells_per_node = store.node_bytes() / geo.cell_bytes();
        assert!(
            cells_per_node >= 1,
            "PathHashing: node smaller than one cell"
        );
        let n_nodes = geo.total_cells().div_ceil(cells_per_node);
        let nodes: Vec<NodeId> = (0..n_nodes).map(|_| store.alloc()).collect::<Result<_>>()?;
        Ok(Self {
            store,
            occupancy: vec![None; geo.total_cells()],
            geo,
            nodes,
            cells_per_node,
            len: 0,
        })
    }

    /// Rebuild the DRAM occupancy mirror from the persisted cell flags
    /// after a crash. `nodes` must be the table's node list in
    /// construction order (durable allocator metadata).
    pub fn recover(
        mut store: S,
        nodes: Vec<NodeId>,
        leaves: usize,
        levels: usize,
        max_value: usize,
    ) -> Result<Self> {
        let leaves = leaves.next_power_of_two();
        let levels = levels.min(leaves.trailing_zeros() as usize + 1);
        let geo = Geometry {
            leaves,
            levels,
            max_value,
        };
        let cells_per_node = store.node_bytes() / geo.cell_bytes();
        let mut occupancy = vec![None; geo.total_cells()];
        let mut len = 0;
        for (cell, slot) in occupancy.iter_mut().enumerate() {
            let node = nodes[cell / cells_per_node];
            let off = (cell % cells_per_node) * geo.cell_bytes();
            let image = store.read(node)?;
            if image[off] == 1 {
                let key = u64::from_le_bytes(image[off + 1..off + 9].try_into().expect("8 bytes"));
                *slot = Some(key);
                len += 1;
            }
        }
        Ok(Self {
            store,
            geo,
            nodes,
            cells_per_node,
            occupancy,
            len,
        })
    }

    /// Consume the structure, returning the node store (simulates a
    /// crash: all DRAM state is dropped; NVM contents survive).
    pub fn into_store(self) -> S {
        self.store
    }

    /// The table's node list (recovery metadata).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Stored key count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Load factor over all cells.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.geo.total_cells() as f64
    }

    fn locate(&self, cell: usize) -> (NodeId, usize) {
        (
            self.nodes[cell / self.cells_per_node],
            (cell % self.cells_per_node) * self.geo.cell_bytes(),
        )
    }

    /// The candidate cells of `key`, leaf first then up the path.
    fn path_cells(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let leaf = (hash_key(key) as usize) & (self.geo.leaves - 1);
        (0..self.geo.levels).map(move |level| self.geo.cell_index(level, leaf >> level))
    }

    fn write_cell(&mut self, cell: usize, key: u64, value: &[u8]) -> Result<()> {
        let (node, off) = self.locate(cell);
        let mut payload = Vec::with_capacity(11 + value.len());
        payload.push(1u8);
        payload.extend_from_slice(&key.to_le_bytes());
        payload.extend_from_slice(&(value.len() as u16).to_le_bytes());
        payload.extend_from_slice(value);
        self.store.write_at(node, off, &payload)?;
        self.occupancy[cell] = Some(key);
        Ok(())
    }

    fn read_cell_value(&mut self, cell: usize) -> Result<Vec<u8>> {
        let (node, off) = self.locate(cell);
        let image = self.store.read(node)?;
        let vlen =
            u16::from_le_bytes(image[off + 9..off + 11].try_into().expect("2 bytes")) as usize;
        Ok(image[off + 11..off + 11 + vlen].to_vec())
    }
}

impl<S: NodeStore> NvmKvStore for PathHashing<S> {
    fn name(&self) -> &'static str {
        "Path Hashing"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        if value.len() > self.geo.max_value {
            return Err(StoreError::Sim(e2nvm_sim::SimError::SizeMismatch {
                expected: self.geo.max_value,
                actual: value.len(),
            }));
        }
        // Update in place if present; otherwise take the first free
        // cell along the path.
        let mut free = None;
        let cells: Vec<usize> = self.path_cells(key).collect();
        for cell in cells {
            match self.occupancy[cell] {
                Some(k) if k == key => {
                    return self.write_cell(cell, key, value);
                }
                None if free.is_none() => free = Some(cell),
                _ => {}
            }
        }
        match free {
            Some(cell) => {
                self.len += 1;
                self.write_cell(cell, key, value)
            }
            None => Err(StoreError::OutOfSpace),
        }
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let cells: Vec<usize> = self.path_cells(key).collect();
        for cell in cells {
            if self.occupancy[cell] == Some(key) {
                return Ok(Some(self.read_cell_value(cell)?));
            }
        }
        Ok(None)
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        let cells: Vec<usize> = self.path_cells(key).collect();
        for cell in cells {
            if self.occupancy[cell] == Some(key) {
                let (node, off) = self.locate(cell);
                // One flag byte reset — the paper's Algorithm 2 cost.
                self.store.write_at(node, off, &[0u8])?;
                self.occupancy[cell] = None;
                self.len -= 1;
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        // Hash tables do not support ordered scans natively; enumerate
        // the occupancy mirror (the paper's SCAN goes through the tree
        // index instead — this path exists for harness completeness).
        let mut hits: Vec<(usize, u64)> = self
            .occupancy
            .iter()
            .enumerate()
            .filter_map(|(cell, k)| k.filter(|k| (lo..=hi).contains(k)).map(|k| (cell, k)))
            .collect();
        hits.sort_by_key(|&(_, k)| k);
        hits.into_iter()
            .map(|(cell, k)| Ok((k, self.read_cell_value(cell)?)))
            .collect()
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.store.stats()
    }

    fn reset_stats(&mut self) {
        self.store.reset_stats();
    }

    fn maintenance(&mut self) {
        self.store.maintenance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DirectNodeStore;
    use crate::traits::check_against_shadow;
    use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};

    fn table(leaves: usize, levels: usize) -> PathHashing<DirectNodeStore> {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(256)
                .num_segments(256)
                .build()
                .unwrap(),
        );
        PathHashing::new(
            DirectNodeStore::new(MemoryController::without_wear_leveling(dev)),
            leaves,
            levels,
            16,
        )
        .unwrap()
    }

    #[test]
    fn basic_crud() {
        let mut t = table(64, 4);
        t.put(10, b"ten").unwrap();
        t.put(11, b"eleven").unwrap();
        assert_eq!(t.get(10).unwrap().unwrap(), b"ten");
        assert_eq!(t.get(12).unwrap(), None);
        t.put(10, b"TEN").unwrap();
        assert_eq!(t.get(10).unwrap().unwrap(), b"TEN");
        assert_eq!(t.len(), 2);
        assert!(t.delete(10).unwrap());
        assert!(!t.delete(10).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn collisions_resolve_along_path() {
        let mut t = table(4, 3); // tiny: lots of collisions
        let mut inserted = 0;
        for k in 0..7u64 {
            // 4 + 2 + 1 = 7 cells total.
            if t.put(k, &[k as u8; 4]).is_ok() {
                inserted += 1;
            }
        }
        assert!(inserted >= 4, "only {inserted} fit");
        for k in 0..7u64 {
            if let Some(v) = t.get(k).unwrap() {
                assert_eq!(v, vec![k as u8; 4]);
            }
        }
    }

    #[test]
    fn fills_to_out_of_space() {
        let mut t = table(2, 2); // 3 cells
        let mut errs = 0;
        for k in 0..10u64 {
            if matches!(t.put(k, b"x"), Err(StoreError::OutOfSpace)) {
                errs += 1;
            }
        }
        assert!(errs > 0);
        assert!(t.load_factor() <= 1.0);
    }

    #[test]
    fn shadow_stress() {
        let mut t = table(256, 5);
        check_against_shadow(&mut t, 800, 12, 13).unwrap();
    }

    #[test]
    fn writes_are_single_cell() {
        let mut t = table(64, 4);
        t.put(5, &[0xFFu8; 16]).unwrap();
        t.reset_stats();
        t.put(6, &[0xFFu8; 16]).unwrap();
        let s = t.stats();
        // One cell = 27 bytes -> at most 27*8 flips.
        assert!(s.bits_flipped <= 27 * 8, "flips={}", s.bits_flipped);
        t.reset_stats();
        t.delete(6).unwrap();
        assert!(t.stats().bits_flipped <= 8);
    }
}
