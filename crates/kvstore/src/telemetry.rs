//! KV-operation telemetry: per-op counters and latency histograms for
//! the E2-backed stores. Instrumentation is unconditional — built
//! without the `telemetry` feature every handle is a no-op ZST.

use e2nvm_telemetry::{Counter, Histogram, TelemetryRegistry};

/// Latency bucket bounds in nanoseconds for KV operations (put spans
/// padding + prediction + device write; scans can touch many segments).
const OP_LATENCY_BOUNDS: [u64; 8] = [
    1_000,
    5_000,
    25_000,
    100_000,
    500_000,
    2_000_000,
    10_000_000,
    100_000_000,
];

/// Telemetry sink for one KV store: operation counters plus a latency
/// histogram per operation kind, all under the `e2nvm_kv_*` namespace.
#[derive(Clone, Debug)]
pub struct StoreTelemetry {
    registry: Option<TelemetryRegistry>,
    pub(crate) puts: Counter,
    pub(crate) gets: Counter,
    pub(crate) deletes: Counter,
    pub(crate) scans: Counter,
    pub(crate) put_latency_ns: Histogram,
    pub(crate) get_latency_ns: Histogram,
}

impl Default for StoreTelemetry {
    fn default() -> Self {
        Self::disconnected()
    }
}

impl StoreTelemetry {
    /// A sink wired to nothing: counters count into thin air (or are
    /// no-ops entirely with the feature off).
    pub fn disconnected() -> Self {
        Self {
            registry: None,
            puts: Counter::disconnected(),
            gets: Counter::disconnected(),
            deletes: Counter::disconnected(),
            scans: Counter::disconnected(),
            put_latency_ns: Histogram::disconnected(&OP_LATENCY_BOUNDS),
            get_latency_ns: Histogram::disconnected(&OP_LATENCY_BOUNDS),
        }
    }

    /// Register this store's series on `registry` under the given store
    /// label (e.g. `"e2"` / `"sharded"`).
    pub fn register(registry: &TelemetryRegistry, store: &str) -> Self {
        let labels = [("store", store)];
        Self {
            registry: Some(registry.clone()),
            puts: registry.counter_with_labels(
                "e2nvm_kv_puts_total",
                "KV put/update operations",
                &labels,
            ),
            gets: registry.counter_with_labels("e2nvm_kv_gets_total", "KV get operations", &labels),
            deletes: registry.counter_with_labels(
                "e2nvm_kv_deletes_total",
                "KV delete operations",
                &labels,
            ),
            scans: registry.counter_with_labels(
                "e2nvm_kv_scans_total",
                "KV range-scan operations",
                &labels,
            ),
            put_latency_ns: registry.histogram_with_labels(
                "e2nvm_kv_put_latency_ns",
                "KV put latency in nanoseconds",
                &OP_LATENCY_BOUNDS,
                &labels,
            ),
            get_latency_ns: registry.histogram_with_labels(
                "e2nvm_kv_get_latency_ns",
                "KV get latency in nanoseconds",
                &OP_LATENCY_BOUNDS,
                &labels,
            ),
        }
    }

    /// The registry this sink was registered on, if any.
    pub fn registry(&self) -> Option<&TelemetryRegistry> {
        self.registry.as_ref()
    }
}
