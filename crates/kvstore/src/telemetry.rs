//! KV-operation telemetry: per-op counters and latency histograms for
//! the E2-backed stores. Instrumentation is unconditional — built
//! without the `telemetry` feature every handle is a no-op ZST.

use e2nvm_telemetry::{Counter, Gauge, Histogram, TelemetryRegistry};

/// `Instant::now()` only in telemetry builds: the explicit-timing
/// counterpart of `Histogram::start_timer` for paths where the drop
/// guard's borrow would conflict with later `&mut self` calls. With
/// the feature off every histogram is a no-op ZST, so this skips the
/// clock read entirely instead of timing into the void.
#[inline]
pub(crate) fn now_if_enabled() -> Option<std::time::Instant> {
    cfg!(feature = "telemetry").then(std::time::Instant::now)
}

/// Latency bucket bounds in nanoseconds for KV operations (put spans
/// padding + prediction + device write; scans can touch many segments).
const OP_LATENCY_BOUNDS: [u64; 8] = [
    1_000,
    5_000,
    25_000,
    100_000,
    500_000,
    2_000_000,
    10_000_000,
    100_000_000,
];

/// Telemetry sink for one KV store: operation counters plus a latency
/// histogram per operation kind, all under the `e2nvm_kv_*` namespace.
#[derive(Clone, Debug)]
pub struct StoreTelemetry {
    registry: Option<TelemetryRegistry>,
    pub(crate) puts: Counter,
    pub(crate) gets: Counter,
    pub(crate) deletes: Counter,
    pub(crate) scans: Counter,
    pub(crate) put_latency_ns: Histogram,
    pub(crate) get_latency_ns: Histogram,
}

impl Default for StoreTelemetry {
    fn default() -> Self {
        Self::disconnected()
    }
}

impl StoreTelemetry {
    /// A sink wired to nothing: counters count into thin air (or are
    /// no-ops entirely with the feature off).
    pub fn disconnected() -> Self {
        Self {
            registry: None,
            puts: Counter::disconnected(),
            gets: Counter::disconnected(),
            deletes: Counter::disconnected(),
            scans: Counter::disconnected(),
            put_latency_ns: Histogram::disconnected(&OP_LATENCY_BOUNDS),
            get_latency_ns: Histogram::disconnected(&OP_LATENCY_BOUNDS),
        }
    }

    /// Register this store's series on `registry` under the given store
    /// label (e.g. `"e2"` / `"sharded"`).
    pub fn register(registry: &TelemetryRegistry, store: &str) -> Self {
        let labels = [("store", store)];
        Self {
            registry: Some(registry.clone()),
            puts: registry.counter_with_labels(
                "e2nvm_kv_puts_total",
                "KV put/update operations",
                &labels,
            ),
            gets: registry.counter_with_labels("e2nvm_kv_gets_total", "KV get operations", &labels),
            deletes: registry.counter_with_labels(
                "e2nvm_kv_deletes_total",
                "KV delete operations",
                &labels,
            ),
            scans: registry.counter_with_labels(
                "e2nvm_kv_scans_total",
                "KV range-scan operations",
                &labels,
            ),
            put_latency_ns: registry.histogram_with_labels(
                "e2nvm_kv_put_latency_ns",
                "KV put latency in nanoseconds",
                &OP_LATENCY_BOUNDS,
                &labels,
            ),
            get_latency_ns: registry.histogram_with_labels(
                "e2nvm_kv_get_latency_ns",
                "KV get latency in nanoseconds",
                &OP_LATENCY_BOUNDS,
                &labels,
            ),
        }
    }

    /// The registry this sink was registered on, if any.
    pub fn registry(&self) -> Option<&TelemetryRegistry> {
        self.registry.as_ref()
    }
}

/// Cache-lookup latency bucket bounds in nanoseconds. Hits are DRAM
/// map lookups (sub-microsecond); misses additionally pay the inner
/// store's read path, so the buckets span both regimes.
const CACHE_LATENCY_BOUNDS: [u64; 8] =
    [100, 500, 1_000, 5_000, 25_000, 100_000, 500_000, 2_000_000];

/// Telemetry sink for a [`crate::HotCache`]: hit/miss/eviction
/// counters, occupancy gauges, and hit-vs-miss latency histograms, all
/// under the `e2nvm_cache_*` namespace. Built without the `telemetry`
/// feature every handle is a no-op ZST.
#[derive(Clone, Debug)]
pub struct CacheTelemetry {
    registry: Option<TelemetryRegistry>,
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) evictions: Counter,
    pub(crate) invalidations: Counter,
    pub(crate) fills_dropped: Counter,
    pub(crate) occupancy_bytes: Gauge,
    pub(crate) entries: Gauge,
    pub(crate) hit_latency_ns: Histogram,
    pub(crate) miss_latency_ns: Histogram,
}

impl Default for CacheTelemetry {
    fn default() -> Self {
        Self::disconnected()
    }
}

impl CacheTelemetry {
    /// A sink wired to nothing.
    pub fn disconnected() -> Self {
        Self {
            registry: None,
            hits: Counter::disconnected(),
            misses: Counter::disconnected(),
            evictions: Counter::disconnected(),
            invalidations: Counter::disconnected(),
            fills_dropped: Counter::disconnected(),
            occupancy_bytes: Gauge::disconnected(),
            entries: Gauge::disconnected(),
            hit_latency_ns: Histogram::disconnected(&CACHE_LATENCY_BOUNDS),
            miss_latency_ns: Histogram::disconnected(&CACHE_LATENCY_BOUNDS),
        }
    }

    /// Register the cache series on `registry`.
    pub fn register(registry: &TelemetryRegistry) -> Self {
        Self {
            registry: Some(registry.clone()),
            hits: registry.counter("e2nvm_cache_hits_total", "Cache lookups served from DRAM"),
            misses: registry.counter(
                "e2nvm_cache_misses_total",
                "Cache lookups that fell through to the store",
            ),
            evictions: registry.counter(
                "e2nvm_cache_evictions_total",
                "Entries evicted by the CLOCK hand",
            ),
            invalidations: registry.counter(
                "e2nvm_cache_invalidations_total",
                "Coherence invalidations from puts/deletes",
            ),
            fills_dropped: registry.counter(
                "e2nvm_cache_fills_dropped_total",
                "Fills dropped because an invalidation raced the read",
            ),
            occupancy_bytes: registry.gauge(
                "e2nvm_cache_occupancy_bytes",
                "Bytes currently charged against the cache budget",
            ),
            entries: registry.gauge("e2nvm_cache_entries", "Entries currently resident"),
            hit_latency_ns: registry.histogram(
                "e2nvm_cache_hit_latency_ns",
                "GET latency when served from the cache",
                &CACHE_LATENCY_BOUNDS,
            ),
            miss_latency_ns: registry.histogram(
                "e2nvm_cache_miss_latency_ns",
                "GET latency when falling through to the store",
                &CACHE_LATENCY_BOUNDS,
            ),
        }
    }

    /// The registry this sink was registered on, if any.
    pub fn registry(&self) -> Option<&TelemetryRegistry> {
        self.registry.as_ref()
    }
}
