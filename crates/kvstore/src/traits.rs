//! The common KV interface every NVM index structure implements, so the
//! Figure 12 harness can drive them uniformly.

use crate::store::Result;
use e2nvm_sim::DeviceStats;
use e2nvm_telemetry::TelemetryRegistry;

/// A persistent key-value store over simulated NVM.
pub trait NvmKvStore {
    /// Structure name for reports ("B+-Tree", "FP-Tree", ...).
    fn name(&self) -> &'static str;

    /// Insert or update.
    fn put(&mut self, key: u64, value: &[u8]) -> Result<()>;

    /// Look up a key.
    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>>;

    /// Delete a key; returns whether it existed.
    fn delete(&mut self, key: u64) -> Result<bool>;

    /// All pairs with `lo <= key <= hi`, in key order.
    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>>;

    /// Like [`NvmKvStore::scan`], but return at most `limit` pairs
    /// (the lowest keys in the range). The wire protocol's SCAN frame
    /// carries a limit so remote clients can bound a response; the
    /// default implementation truncates a full scan, and structures
    /// with ordered indexes may override it to stop early.
    fn scan_limit(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut entries = self.scan(lo, hi)?;
        entries.truncate(limit);
        Ok(entries)
    }

    /// Device statistics of the underlying store.
    fn stats(&self) -> DeviceStats;

    /// Reset device statistics.
    fn reset_stats(&mut self);

    /// Periodic maintenance hook: for E2-plugged stores this retrains
    /// the placement model on the current free-segment contents (the
    /// paper's lazy background retraining); a no-op otherwise.
    fn maintenance(&mut self) {}

    /// The telemetry registry this store publishes to, if one has been
    /// attached (e.g. [`crate::E2KvStore::attach_telemetry`]). Stores
    /// without instrumentation keep the default `None`.
    fn telemetry(&self) -> Option<&TelemetryRegistry> {
        None
    }
}

/// Exercise a store with a deterministic CRUD workload and verify
/// results against a shadow `BTreeMap` — shared by every structure's
/// tests.
#[cfg(any(test, feature = "test-utils"))]
pub fn check_against_shadow(
    store: &mut dyn NvmKvStore,
    ops: usize,
    value_len: usize,
    seed: u64,
) -> std::result::Result<(), String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for op in 0..ops {
        let key = rng.gen_range(0..64u64);
        match rng.gen_range(0..10) {
            0..=5 => {
                let value: Vec<u8> = (0..value_len).map(|_| rng.gen()).collect();
                store
                    .put(key, &value)
                    .map_err(|e| format!("op {op}: put({key}) failed: {e}"))?;
                shadow.insert(key, value);
            }
            6..=7 => {
                let got = store
                    .get(key)
                    .map_err(|e| format!("op {op}: get({key}) failed: {e}"))?;
                if got.as_ref() != shadow.get(&key) {
                    return Err(format!(
                        "op {op}: get({key}) mismatch: got {:?} expected {:?}",
                        got.map(|v| v.len()),
                        shadow.get(&key).map(|v| v.len())
                    ));
                }
            }
            8 => {
                let existed = store
                    .delete(key)
                    .map_err(|e| format!("op {op}: delete({key}) failed: {e}"))?;
                if existed != shadow.remove(&key).is_some() {
                    return Err(format!("op {op}: delete({key}) existence mismatch"));
                }
            }
            _ => {
                let lo = key.saturating_sub(8);
                let got = store
                    .scan(lo, key)
                    .map_err(|e| format!("op {op}: scan failed: {e}"))?;
                let expect: Vec<(u64, Vec<u8>)> = shadow
                    .range(lo..=key)
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                if got != expect {
                    let gk: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
                    let ek: Vec<u64> = expect.iter().map(|(k, _)| *k).collect();
                    return Err(format!(
                        "op {op}: scan({lo}..={key}) mismatch: got {gk:?} expected {ek:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}
