//! The common KV interface every NVM index structure implements, so the
//! Figure 12 harness can drive them uniformly.

use crate::store::Result;
use e2nvm_sim::DeviceStats;
use e2nvm_telemetry::TelemetryRegistry;

/// A persistent key-value store over simulated NVM.
pub trait NvmKvStore {
    /// Structure name for reports ("B+-Tree", "FP-Tree", ...).
    fn name(&self) -> &'static str;

    /// Insert or update.
    fn put(&mut self, key: u64, value: &[u8]) -> Result<()>;

    /// Look up a key.
    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>>;

    /// Insert or update a batch of pairs, returning one result per
    /// pair, in order. Semantically equivalent to calling
    /// [`NvmKvStore::put`] per pair (duplicate keys resolve
    /// last-occurrence-wins) — which is exactly what this default
    /// implementation does. E2-backed stores override it to pack small
    /// values into shared segments through the `e2nvm-core`
    /// [`e2nvm_core::BatchAccumulator`] path, paying one placement
    /// (model prediction + address pop + device write) per filled
    /// segment instead of one per value.
    fn put_many(&mut self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        pairs
            .iter()
            .map(|&(key, value)| self.put(key, value))
            .collect()
    }

    /// Look up a batch of keys, returning one `Option` per key, in
    /// order. Aborts on the first store error (per-key "not found" is
    /// `None`, not an error). The default implementation loops over
    /// [`NvmKvStore::get`]; concurrent stores override it to serve the
    /// whole batch under one lock acquisition per shard.
    fn get_many(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u8>>>> {
        keys.iter().map(|&key| self.get(key)).collect()
    }

    /// Delete a key; returns whether it existed.
    fn delete(&mut self, key: u64) -> Result<bool>;

    /// All pairs with `lo <= key <= hi`, in key order.
    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>>;

    /// Like [`NvmKvStore::scan`], but return at most `limit` pairs
    /// (the lowest keys in the range). The wire protocol's SCAN frame
    /// carries a limit so remote clients can bound a response; the
    /// default implementation truncates a full scan, and structures
    /// with ordered indexes may override it to stop early.
    fn scan_limit(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut entries = self.scan(lo, hi)?;
        entries.truncate(limit);
        Ok(entries)
    }

    /// Device statistics of the underlying store.
    fn stats(&self) -> DeviceStats;

    /// Reset device statistics.
    fn reset_stats(&mut self);

    /// Periodic maintenance hook: for E2-plugged stores this retrains
    /// the placement model on the current free-segment contents (the
    /// paper's lazy background retraining); a no-op otherwise.
    fn maintenance(&mut self) {}

    /// Force durable state to stable storage: take a snapshot and fsync
    /// the WALs, returning the snapshot bytes written. Stores without a
    /// persistence layer configured return `Ok(0)` — a documented no-op,
    /// so the wire protocol's FLUSH frame is safe against any store.
    fn flush(&mut self) -> Result<u64> {
        Ok(0)
    }

    /// Group-commit barrier: hand every WAL record buffered by the
    /// mutations since the last call to the kernel (one `write(2)` per
    /// dirty shard). The serving layer calls this once per pipelined
    /// request batch, **before** the batch's acknowledgements are
    /// flushed to the socket — that ordering is what makes an acked
    /// write survive a process kill. Stores without persistence keep
    /// the default no-op.
    fn commit(&mut self) -> Result<()> {
        Ok(())
    }

    /// The telemetry registry this store publishes to, if one has been
    /// attached (e.g. [`crate::E2KvStore::attach_telemetry`]). Stores
    /// without instrumentation keep the default `None`.
    fn telemetry(&self) -> Option<&TelemetryRegistry> {
        None
    }
}

/// Exercise a store with a deterministic CRUD workload and verify
/// results against a shadow `BTreeMap` — shared by every structure's
/// tests.
#[cfg(any(test, feature = "test-utils"))]
pub fn check_against_shadow(
    store: &mut dyn NvmKvStore,
    ops: usize,
    value_len: usize,
    seed: u64,
) -> std::result::Result<(), String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for op in 0..ops {
        let key = rng.gen_range(0..64u64);
        match rng.gen_range(0..12) {
            10 => {
                // Batched put: must behave like sequential puts.
                let n = rng.gen_range(1..=4usize);
                let pairs: Vec<(u64, Vec<u8>)> = (0..n)
                    .map(|_| {
                        let k = rng.gen_range(0..64u64);
                        let v: Vec<u8> = (0..value_len).map(|_| rng.gen()).collect();
                        (k, v)
                    })
                    .collect();
                let borrowed: Vec<(u64, &[u8])> =
                    pairs.iter().map(|(k, v)| (*k, v.as_slice())).collect();
                for (i, r) in store.put_many(&borrowed).into_iter().enumerate() {
                    r.map_err(|e| format!("op {op}: put_many[{i}] failed: {e}"))?;
                }
                for (k, v) in pairs {
                    shadow.insert(k, v);
                }
            }
            11 => {
                // Batched get: must agree with the shadow per key.
                let n = rng.gen_range(1..=6usize);
                let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64u64)).collect();
                let got = store
                    .get_many(&keys)
                    .map_err(|e| format!("op {op}: get_many failed: {e}"))?;
                for (k, g) in keys.iter().zip(&got) {
                    if g.as_ref() != shadow.get(k) {
                        return Err(format!(
                            "op {op}: get_many({k}) mismatch: got {:?} expected {:?}",
                            g.as_ref().map(Vec::len),
                            shadow.get(k).map(Vec::len)
                        ));
                    }
                }
            }
            0..=5 => {
                let value: Vec<u8> = (0..value_len).map(|_| rng.gen()).collect();
                store
                    .put(key, &value)
                    .map_err(|e| format!("op {op}: put({key}) failed: {e}"))?;
                shadow.insert(key, value);
            }
            6..=7 => {
                let got = store
                    .get(key)
                    .map_err(|e| format!("op {op}: get({key}) failed: {e}"))?;
                if got.as_ref() != shadow.get(&key) {
                    return Err(format!(
                        "op {op}: get({key}) mismatch: got {:?} expected {:?}",
                        got.map(|v| v.len()),
                        shadow.get(&key).map(|v| v.len())
                    ));
                }
            }
            8 => {
                let existed = store
                    .delete(key)
                    .map_err(|e| format!("op {op}: delete({key}) failed: {e}"))?;
                if existed != shadow.remove(&key).is_some() {
                    return Err(format!("op {op}: delete({key}) existence mismatch"));
                }
            }
            _ => {
                let lo = key.saturating_sub(8);
                let got = store
                    .scan(lo, key)
                    .map_err(|e| format!("op {op}: scan failed: {e}"))?;
                let expect: Vec<(u64, Vec<u8>)> = shadow
                    .range(lo..=key)
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                if got != expect {
                    let gk: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
                    let ek: Vec<u64> = expect.iter().map(|(k, _)| *k).collect();
                    return Err(format!(
                        "op {op}: scan({lo}..={key}) mismatch: got {gk:?} expected {ek:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}
