//! A sharded, bounded read-through DRAM cache in front of any
//! [`NvmKvStore`].
//!
//! The paper's economics motivate this layer: NVM *writes* are the
//! expensive operation (bit flips cost energy and wear, which is why
//! the VAE placement engine exists), while *reads* are cheap — and a
//! DRAM hit is cheaper still. Under zipfian read-heavy traffic
//! (YCSB-B/C) the hot tail of keys is small enough to pin in DRAM, so
//! the cache absorbs the read majority and the flip-aware write path
//! keeps exclusive ownership of mutations.
//!
//! # Design
//!
//! * **Sharding**: a power-of-two number of shards, each behind its own
//!   mutex, selected by a SplitMix64 hash of the key — no global lock,
//!   so the cache composes with [`crate::ShardedE2KvStore`]'s
//!   per-shard engine locks without serializing traffic.
//! * **Eviction**: CLOCK with *cold insertion*. New fills start with a
//!   cleared reference bit and only a hit sets it, so one-touch scans
//!   behave like segmented-LRU probation and cannot flush the
//!   established hot set. Each shard evicts against its own byte
//!   budget (`capacity_bytes / shards`).
//! * **Coherence**: strictly read-through. [`CachedKvStore`] mutators
//!   write the inner store first and invalidate *before returning*, so
//!   an acknowledged PUT/DELETE is never followed by a stale read.
//!   Every shard carries a version counter bumped by every
//!   invalidation; a miss snapshots the version before reading the
//!   inner store and its later fill is dropped if the version moved —
//!   closing the race where a concurrent writer lands between the
//!   inner read and the fill.
//! * **Degraded mode**: a hit never consults the inner store, so keys
//!   resident in the cache stay readable even while the store reports
//!   [`crate::StoreError::Degraded`]; misses surface the store's error
//!   unchanged.
//! * **Scans bypass** the cache entirely: they are range reads over
//!   many keys with no reuse signal, and caching them would let a
//!   single scan evict the hot set.

use crate::store::{Result, StoreError};
use crate::telemetry::CacheTelemetry;
use crate::traits::NvmKvStore;
use e2nvm_telemetry::TelemetryRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Approximate per-entry DRAM bookkeeping overhead (slot + hash-map
/// entry + allocation headers) charged against the byte budget in
/// addition to the value bytes, so millions of tiny values cannot
/// balloon past `capacity_bytes`.
const ENTRY_OVERHEAD_BYTES: usize = 48;

/// SplitMix64 finalizer: decorrelates adjacent keys before shard
/// selection (the same mix the sharded engine uses for routing).
#[inline]
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Configuration for a [`HotCache`] / [`CachedKvStore`].
///
/// Construct via [`CacheConfig::builder`]; [`CacheConfig::default`] is
/// 64 MiB over 8 shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total DRAM budget in bytes across all shards (values plus a
    /// fixed per-entry overhead).
    pub capacity_bytes: usize,
    /// Number of independently locked shards; must be a power of two.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 64 * 1024 * 1024,
            shards: 8,
        }
    }
}

impl CacheConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::default()
    }

    /// Check invariants: a nonzero budget and a power-of-two shard
    /// count large enough that every shard gets at least one byte.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 || !self.shards.is_power_of_two() {
            return Err(StoreError::Config(format!(
                "cache shards must be a power of two >= 1, got {}",
                self.shards
            )));
        }
        if self.capacity_bytes / self.shards == 0 {
            return Err(StoreError::Config(format!(
                "cache capacity {}B spread over {} shards leaves empty shards",
                self.capacity_bytes, self.shards
            )));
        }
        Ok(())
    }
}

/// Builder for [`CacheConfig`] — the same validated-`build()` idiom as
/// [`e2nvm_core::E2Config::builder`].
#[derive(Debug, Clone, Default)]
pub struct CacheConfigBuilder {
    cfg: CacheConfig,
}

impl CacheConfigBuilder {
    /// Total DRAM budget in bytes across all shards.
    pub fn capacity_bytes(mut self, value: usize) -> Self {
        self.cfg.capacity_bytes = value;
        self
    }

    /// Number of independently locked shards (power of two).
    pub fn shards(mut self, value: usize) -> Self {
        self.cfg.shards = value;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<CacheConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Always-on cache counters, aggregated across shards on demand —
/// available to tests and tools even when the `telemetry` feature is
/// compiled out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from DRAM.
    pub hits: u64,
    /// Lookups that fell through to the inner store.
    pub misses: u64,
    /// Entries evicted by the CLOCK hand to make room.
    pub evictions: u64,
    /// Entries (or pending fills) removed by PUT/DELETE coherence.
    pub invalidations: u64,
    /// Fills dropped because an invalidation raced the inner read.
    pub fills_dropped: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub occupancy_bytes: usize,
    /// The configured byte budget.
    pub capacity_bytes: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The outcome of a cache lookup: a DRAM hit, or a miss carrying the
/// shard's coherence version to guard the eventual [`HotCache::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The value, served without touching the inner store.
    Hit(Vec<u8>),
    /// Not resident; pass `version` back to [`HotCache::fill`].
    Miss {
        /// Shard coherence version at miss time.
        version: u64,
    },
}

/// Hasher for the per-shard key maps: the same SplitMix64 finalizer
/// used for shard routing, instead of the standard library's SipHash —
/// measurably cheaper on the hit path, and full-avalanche over the
/// whole key. (No hashing secret, so this trades SipHash's flooding
/// resistance for speed — the right trade for a cache whose worst case
/// under crafted keys is misses, not unbounded chains of state.)
#[derive(Debug, Default, Clone)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("shard maps hash only u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, key: u64) {
        self.0 = hash64(key);
    }
}

type KeyMap = HashMap<u64, usize, std::hash::BuildHasherDefault<KeyHasher>>;

/// One cached entry.
#[derive(Debug)]
struct Slot {
    key: u64,
    value: Box<[u8]>,
    /// CLOCK reference bit: cleared on insertion (cold/probationary),
    /// set by a hit, cleared again by a passing hand sweep.
    ref_bit: bool,
}

/// One independently locked cache shard: a slab of slots, a key → slot
/// map, a free list, the CLOCK hand, and the coherence version.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Option<Slot>>,
    map: KeyMap,
    free: Vec<usize>,
    hand: usize,
    used_bytes: usize,
    budget: usize,
    /// Bumped by every invalidation (even of absent keys) so that a
    /// miss's later fill can detect any intervening write.
    version: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    fills_dropped: u64,
}

impl Shard {
    fn charge(value_len: usize) -> usize {
        value_len + ENTRY_OVERHEAD_BYTES
    }

    /// Remove the slot at `idx` and return its freed byte charge.
    fn remove_slot(&mut self, idx: usize) -> usize {
        let slot = self.slots[idx].take().expect("occupied slot");
        self.map.remove(&slot.key);
        self.free.push(idx);
        let freed = Self::charge(slot.value.len());
        self.used_bytes -= freed;
        freed
    }

    /// Advance the CLOCK hand until `need` bytes fit, evicting
    /// unreferenced slots and demoting referenced ones. Returns
    /// `(entries evicted, bytes freed)`.
    fn evict_until_fits(&mut self, need: usize) -> (usize, usize) {
        let mut evicted = 0usize;
        let mut freed = 0usize;
        while self.used_bytes + need > self.budget && !self.map.is_empty() {
            let idx = self.hand % self.slots.len();
            self.hand = self.hand.wrapping_add(1);
            match &mut self.slots[idx] {
                Some(slot) if slot.ref_bit => slot.ref_bit = false,
                Some(_) => {
                    freed += self.remove_slot(idx);
                    evicted += 1;
                    self.evictions += 1;
                }
                None => {}
            }
        }
        (evicted, freed)
    }
}

/// The sharded hot-key cache itself. Clonable; clones share the shards.
///
/// Most integrations want [`CachedKvStore`], which pairs a `HotCache`
/// with an inner store and keeps the two coherent. The raw handle is
/// exposed for embedders that manage their own backing reads.
#[derive(Clone, Debug)]
pub struct HotCache {
    inner: Arc<CacheInner>,
}

#[derive(Debug)]
struct CacheInner {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    capacity_bytes: usize,
    telemetry: CacheTelemetry,
}

impl HotCache {
    /// Build a cache with no telemetry attached.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`CacheConfig::validate`] (construct via
    /// [`CacheConfig::builder`] to catch this as an error instead).
    pub fn new(cfg: CacheConfig) -> Self {
        Self::build(cfg, CacheTelemetry::disconnected())
    }

    /// Build a cache whose series are registered on `registry`
    /// (`e2nvm_cache_*` namespace).
    ///
    /// # Panics
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn with_telemetry(cfg: CacheConfig, registry: &TelemetryRegistry) -> Self {
        Self::build(cfg, CacheTelemetry::register(registry))
    }

    fn build(cfg: CacheConfig, telemetry: CacheTelemetry) -> Self {
        cfg.validate().expect("invalid CacheConfig");
        let budget = cfg.capacity_bytes / cfg.shards;
        let shards: Box<[Mutex<Shard>]> = (0..cfg.shards)
            .map(|_| {
                Mutex::new(Shard {
                    budget,
                    ..Shard::default()
                })
            })
            .collect();
        Self {
            inner: Arc::new(CacheInner {
                shards,
                mask: cfg.shards as u64 - 1,
                capacity_bytes: cfg.capacity_bytes,
                telemetry,
            }),
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.inner.shards[(hash64(key) & self.inner.mask) as usize]
    }

    /// Look `key` up. A hit clones the value out under the shard lock
    /// and marks the slot referenced; a miss returns the shard's
    /// coherence version for the eventual [`HotCache::fill`].
    pub fn lookup(&self, key: u64) -> Lookup {
        match self.lookup_apply(key, |bytes: &[u8]| bytes.to_vec()) {
            Ok(value) => Lookup::Hit(value),
            Err((version, _)) => Lookup::Miss { version },
        }
    }

    /// The allocation-free lookup underneath [`HotCache::lookup`]: a
    /// hit applies `f` to the value bytes *under the shard lock* (keep
    /// it short) and returns its result; a miss hands `f` back along
    /// with the shard's coherence version.
    fn lookup_apply<R, F: FnOnce(&[u8]) -> R>(
        &self,
        key: u64,
        f: F,
    ) -> std::result::Result<R, (u64, F)> {
        let mut shard = self.shard(key).lock();
        match shard.map.get(&key).copied() {
            Some(idx) => {
                shard.hits += 1;
                let slot = shard.slots[idx].as_mut().expect("mapped slot occupied");
                slot.ref_bit = true;
                let r = f(&slot.value);
                drop(shard);
                self.inner.telemetry.hits.inc();
                Ok(r)
            }
            None => {
                shard.misses += 1;
                let version = shard.version;
                drop(shard);
                self.inner.telemetry.misses.inc();
                Err((version, f))
            }
        }
    }

    /// Insert `value` for `key`, unless the shard's version moved past
    /// `version` (a writer invalidated between the caller's inner-store
    /// read and now — caching that read would resurrect a stale value).
    /// Values too large for a shard's budget are not cached. Returns
    /// whether the value is now resident.
    pub fn fill(&self, key: u64, value: &[u8], version: u64) -> bool {
        let need = Shard::charge(value.len());
        let mut shard = self.shard(key).lock();
        if shard.version != version {
            shard.fills_dropped += 1;
            drop(shard);
            self.inner.telemetry.fills_dropped.inc();
            return false;
        }
        if shard.map.contains_key(&key) {
            // A concurrent miss at the same version already filled this
            // key; both reads saw the same inner value.
            return true;
        }
        if need > shard.budget {
            return false;
        }
        let (evicted, freed) = shard.evict_until_fits(need);
        let idx = match shard.free.pop() {
            Some(idx) => idx,
            None => {
                shard.slots.push(None);
                shard.slots.len() - 1
            }
        };
        shard.slots[idx] = Some(Slot {
            key,
            value: value.into(),
            ref_bit: false,
        });
        shard.map.insert(key, idx);
        shard.used_bytes += need;
        drop(shard);
        let t = &self.inner.telemetry;
        if evicted > 0 {
            t.evictions.add(evicted as u64);
            t.occupancy_bytes.sub(freed as i64);
            t.entries.sub(evicted as i64);
        }
        t.occupancy_bytes.add(need as i64);
        t.entries.add(1);
        true
    }

    /// Drop `key` if resident and bump the shard's coherence version
    /// unconditionally (also cancelling any in-flight fill for *any*
    /// key of the shard — correctness over precision). Returns whether
    /// a resident entry was removed.
    pub fn invalidate(&self, key: u64) -> bool {
        let mut shard = self.shard(key).lock();
        shard.version += 1;
        shard.invalidations += 1;
        let removed = shard
            .map
            .get(&key)
            .copied()
            .map(|idx| shard.remove_slot(idx));
        drop(shard);
        self.inner.telemetry.invalidations.inc();
        if let Some(freed) = removed {
            self.inner.telemetry.occupancy_bytes.sub(freed as i64);
            self.inner.telemetry.entries.sub(1);
        }
        removed.is_some()
    }

    /// Entries resident across all shards.
    pub fn entries(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats {
            capacity_bytes: self.inner.capacity_bytes,
            ..CacheStats::default()
        };
        for shard in self.inner.shards.iter() {
            let s = shard.lock();
            out.hits += s.hits;
            out.misses += s.misses;
            out.evictions += s.evictions;
            out.invalidations += s.invalidations;
            out.fills_dropped += s.fills_dropped;
            out.entries += s.map.len();
            out.occupancy_bytes += s.used_bytes;
        }
        out
    }

    fn telemetry(&self) -> &CacheTelemetry {
        &self.inner.telemetry
    }
}

/// A read-through cache wrapped around any [`NvmKvStore`].
///
/// * GET consults the cache first; only misses reach the inner store,
///   and successful reads are cached (guarded by the shard version so a
///   racing write can never resurrect a stale value).
/// * PUT/DELETE (and their batch forms) apply to the inner store first
///   and invalidate before returning — acknowledged writes are never
///   followed by stale reads.
/// * SCAN bypasses the cache in both directions.
/// * A hit never touches the inner store, so cached keys stay readable
///   while the store is degraded.
///
/// Clones share both the cache and the inner store's shared state (for
/// [`crate::ShardedE2KvStore`], clones of the inner store already share
/// shards), which is how the server hands one coherent cache to every
/// connection thread.
#[derive(Clone, Debug)]
pub struct CachedKvStore<S> {
    inner: S,
    cache: HotCache,
}

impl<S: NvmKvStore> CachedKvStore<S> {
    /// Wrap `inner` with a cache built from `cfg` (no telemetry).
    ///
    /// # Panics
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn new(inner: S, cfg: CacheConfig) -> Self {
        Self {
            inner,
            cache: HotCache::new(cfg),
        }
    }

    /// Wrap `inner` with a cache whose `e2nvm_cache_*` series are
    /// registered on `registry`.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn with_telemetry(inner: S, cfg: CacheConfig, registry: &TelemetryRegistry) -> Self {
        Self {
            inner,
            cache: HotCache::with_telemetry(cfg, registry),
        }
    }

    /// Wrap `inner` around an existing cache handle (shared with other
    /// wrappers).
    pub fn with_cache(inner: S, cache: HotCache) -> Self {
        Self { inner, cache }
    }

    /// Borrow the inner store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Borrow the inner store mutably. Mutating it directly bypasses
    /// invalidation; callers doing so own the coherence consequences.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, discarding the cache.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The shared cache handle.
    pub fn cache(&self) -> &HotCache {
        &self.cache
    }

    /// Aggregate cache counters (always available, telemetry feature or
    /// not).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// GET through the cache, applying `f` to the value bytes instead
    /// of returning an owned copy. On a hit `f` runs on the cached
    /// bytes *under the shard lock* (keep it short — e.g. encode into
    /// an output buffer), so the hot path allocates nothing. Misses
    /// behave exactly like [`NvmKvStore::get`]: read the inner store,
    /// fill, then apply `f` to the fetched value.
    pub fn get_with<R>(&mut self, key: u64, f: impl FnOnce(&[u8]) -> R) -> Result<Option<R>> {
        let t0 = crate::telemetry::now_if_enabled();
        match self.cache.lookup_apply(key, f) {
            Ok(r) => {
                if let Some(t0) = t0 {
                    self.cache
                        .telemetry()
                        .hit_latency_ns
                        .observe(t0.elapsed().as_nanos() as u64);
                }
                Ok(Some(r))
            }
            Err((version, f)) => {
                let got = self.inner.get(key)?;
                let r = got.map(|value| {
                    self.cache.fill(key, &value, version);
                    f(&value)
                });
                if let Some(t0) = t0 {
                    self.cache
                        .telemetry()
                        .miss_latency_ns
                        .observe(t0.elapsed().as_nanos() as u64);
                }
                Ok(r)
            }
        }
    }
}

impl<S: NvmKvStore> NvmKvStore for CachedKvStore<S> {
    fn name(&self) -> &'static str {
        "cached"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        // Inner store first, invalidate before the ack. (The other
        // order is racy: a concurrent miss could re-fill the *old*
        // value after our invalidation but before our inner write.)
        // Invalidate even on error — a failed put may still have
        // changed the store (e.g. an index update whose recycle step
        // failed).
        let result = self.inner.put(key, value);
        self.cache.invalidate(key);
        result
    }

    fn put_many(&mut self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        let results = self.inner.put_many(pairs);
        for &(key, _) in pairs {
            self.cache.invalidate(key);
        }
        results
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let t0 = crate::telemetry::now_if_enabled();
        match self.cache.lookup(key) {
            Lookup::Hit(value) => {
                if let Some(t0) = t0 {
                    self.cache
                        .telemetry()
                        .hit_latency_ns
                        .observe(t0.elapsed().as_nanos() as u64);
                }
                Ok(Some(value))
            }
            Lookup::Miss { version } => {
                let got = self.inner.get(key)?;
                if let Some(value) = &got {
                    self.cache.fill(key, value, version);
                }
                if let Some(t0) = t0 {
                    self.cache
                        .telemetry()
                        .miss_latency_ns
                        .observe(t0.elapsed().as_nanos() as u64);
                }
                Ok(got)
            }
        }
    }

    fn get_many(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u8>>>> {
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        // (position in `keys`, miss-time version) per cache miss.
        let mut miss_idx: Vec<(usize, u64)> = Vec::new();
        let mut miss_keys: Vec<u64> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            match self.cache.lookup(key) {
                Lookup::Hit(value) => out[i] = Some(value),
                Lookup::Miss { version } => {
                    miss_idx.push((i, version));
                    miss_keys.push(key);
                }
            }
        }
        if !miss_keys.is_empty() {
            let fetched = self.inner.get_many(&miss_keys)?;
            for (((i, version), key), got) in miss_idx.into_iter().zip(miss_keys).zip(fetched) {
                if let Some(value) = &got {
                    self.cache.fill(key, value, version);
                }
                out[i] = got;
            }
        }
        Ok(out)
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        let result = self.inner.delete(key);
        self.cache.invalidate(key);
        result
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.inner.scan(lo, hi)
    }

    fn scan_limit(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>> {
        self.inner.scan_limit(lo, hi, limit)
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn maintenance(&mut self) {
        self.inner.maintenance();
    }

    fn flush(&mut self) -> Result<u64> {
        // Snapshotting reads state, it doesn't change it — cached
        // entries stay valid, so no invalidation is needed.
        self.inner.flush()
    }

    fn commit(&mut self) -> Result<()> {
        self.inner.commit()
    }

    fn telemetry(&self) -> Option<&TelemetryRegistry> {
        self.cache
            .telemetry()
            .registry()
            .or_else(|| self.inner.telemetry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_sim::DeviceStats;

    /// A scripted inner store: a plain map that can be switched into
    /// degraded mode, counting how many reads reach it.
    #[derive(Default)]
    struct MockStore {
        map: std::collections::BTreeMap<u64, Vec<u8>>,
        degraded: bool,
        inner_gets: u64,
    }

    impl NvmKvStore for MockStore {
        fn name(&self) -> &'static str {
            "mock"
        }
        fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
            if self.degraded {
                return Err(StoreError::Degraded { retired: 3 });
            }
            self.map.insert(key, value.to_vec());
            Ok(())
        }
        fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
            self.inner_gets += 1;
            if self.degraded {
                return Err(StoreError::Degraded { retired: 3 });
            }
            Ok(self.map.get(&key).cloned())
        }
        fn delete(&mut self, key: u64) -> Result<bool> {
            Ok(self.map.remove(&key).is_some())
        }
        fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
            Ok(self
                .map
                .range(lo..=hi)
                .map(|(k, v)| (*k, v.clone()))
                .collect())
        }
        fn stats(&self) -> DeviceStats {
            DeviceStats::default()
        }
        fn reset_stats(&mut self) {}
    }

    fn small_cache() -> CacheConfig {
        CacheConfig::builder()
            .capacity_bytes(4096)
            .shards(2)
            .build()
            .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::builder().shards(3).build().is_err());
        assert!(CacheConfig::builder().shards(0).build().is_err());
        assert!(CacheConfig::builder()
            .capacity_bytes(1)
            .shards(8)
            .build()
            .is_err());
        let cfg = CacheConfig::builder()
            .capacity_bytes(1024)
            .shards(4)
            .build()
            .unwrap();
        assert_eq!(cfg.shards, 4);
    }

    #[test]
    fn read_through_and_hit_serving() {
        let mut s = CachedKvStore::new(MockStore::default(), small_cache());
        s.put(1, b"one").unwrap();
        assert_eq!(s.get(1).unwrap().as_deref(), Some(&b"one"[..]));
        let after_first = s.inner().inner_gets;
        // Second read: pure DRAM, the inner store sees nothing.
        assert_eq!(s.get(1).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(s.inner().inner_gets, after_first);
        let stats = s.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.occupancy_bytes > 0);
        assert!(stats.hit_rate() > 0.4);
    }

    #[test]
    fn put_and_delete_invalidate() {
        let mut s = CachedKvStore::new(MockStore::default(), small_cache());
        s.put(1, b"v1").unwrap();
        s.get(1).unwrap();
        s.put(1, b"v2").unwrap();
        // No stale read after the acknowledged overwrite.
        assert_eq!(s.get(1).unwrap().as_deref(), Some(&b"v2"[..]));
        s.delete(1).unwrap();
        assert_eq!(s.get(1).unwrap(), None);
        // Negative results are not cached: a later put is visible.
        s.put(1, b"v3").unwrap();
        assert_eq!(s.get(1).unwrap().as_deref(), Some(&b"v3"[..]));
    }

    #[test]
    fn degraded_store_still_serves_cached_keys() {
        let mut s = CachedKvStore::new(MockStore::default(), small_cache());
        s.put(7, b"resident").unwrap();
        s.get(7).unwrap(); // cache it
        s.inner_mut().degraded = true;
        // Cached key: served from DRAM, no error.
        assert_eq!(s.get(7).unwrap().as_deref(), Some(&b"resident"[..]));
        // Uncached key: the store's degraded error surfaces unchanged.
        assert_eq!(s.get(8), Err(StoreError::Degraded { retired: 3 }));
    }

    #[test]
    fn stale_fill_is_dropped_after_version_bump() {
        let cache = HotCache::new(small_cache());
        let Lookup::Miss { version } = cache.lookup(5) else {
            panic!("expected miss");
        };
        // A writer invalidates between the miss and the fill.
        cache.invalidate(5);
        assert!(!cache.fill(5, b"stale", version), "stale fill must drop");
        assert_eq!(
            cache.lookup(5),
            Lookup::Miss {
                version: version + 1
            }
        );
        assert_eq!(cache.stats().fills_dropped, 1);
    }

    #[test]
    fn bounded_by_byte_budget_with_clock_eviction() {
        // One shard, tiny budget: 4 entries of 100B + overhead fit,
        // the 5th evicts.
        let cfg = CacheConfig::builder()
            .capacity_bytes(4 * (100 + ENTRY_OVERHEAD_BYTES))
            .shards(1)
            .build()
            .unwrap();
        let cache = HotCache::new(cfg.clone());
        for key in 0..5u64 {
            let Lookup::Miss { version } = cache.lookup(key) else {
                panic!("fresh key must miss");
            };
            assert!(cache.fill(key, &[key as u8; 100], version));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.evictions, 1);
        assert!(stats.occupancy_bytes <= cfg.capacity_bytes);
        // Values larger than the whole budget are never cached.
        let Lookup::Miss { version } = cache.lookup(99) else {
            panic!();
        };
        assert!(!cache.fill(99, &vec![0u8; cfg.capacity_bytes + 1], version));
    }

    #[test]
    fn clock_hits_protect_hot_entries_from_one_touch_scans() {
        let cfg = CacheConfig::builder()
            .capacity_bytes(4 * (100 + ENTRY_OVERHEAD_BYTES))
            .shards(1)
            .build()
            .unwrap();
        let cache = HotCache::new(cfg);
        let fill = |key: u64| {
            if let Lookup::Miss { version } = cache.lookup(key) {
                cache.fill(key, &[key as u8; 100], version);
            }
        };
        fill(1);
        // Re-reference key 1: its ref bit protects it.
        assert!(matches!(cache.lookup(1), Lookup::Hit(_)));
        // Stream cold keys through the remaining space.
        for key in 10..16u64 {
            fill(key);
        }
        // The hot key survived the cold stream.
        assert!(
            matches!(cache.lookup(1), Lookup::Hit(_)),
            "hot key evicted by one-touch traffic"
        );
    }

    #[test]
    fn batch_ops_stay_coherent() {
        let mut s = CachedKvStore::new(MockStore::default(), small_cache());
        let pairs: Vec<(u64, &[u8])> = vec![(1, b"a"), (2, b"b"), (3, b"c")];
        assert!(s.put_many(&pairs).iter().all(Result::is_ok));
        assert_eq!(
            s.get_many(&[1, 2, 3, 4]).unwrap(),
            vec![
                Some(b"a".to_vec()),
                Some(b"b".to_vec()),
                Some(b"c".to_vec()),
                None
            ]
        );
        // All three now cached; overwrite via put_many must invalidate.
        let pairs2: Vec<(u64, &[u8])> = vec![(2, b"B")];
        assert!(s.put_many(&pairs2).iter().all(Result::is_ok));
        assert_eq!(
            s.get_many(&[1, 2]).unwrap(),
            vec![Some(b"a".to_vec()), Some(b"B".to_vec())]
        );
        // Key 1 was a hit (no inner traffic); key 2 had to be
        // re-fetched after its invalidation; key 4 was never cached.
        let stats = s.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.invalidations, 4);
    }

    #[test]
    fn scan_bypasses_cache() {
        let mut s = CachedKvStore::new(MockStore::default(), small_cache());
        s.put(1, b"x").unwrap();
        s.put(2, b"y").unwrap();
        let scanned = s.scan(0, 10).unwrap();
        assert_eq!(scanned.len(), 2);
        // Scans must not populate the cache.
        assert_eq!(s.cache_stats().entries, 0);
        let limited = s.scan_limit(0, 10, 1).unwrap();
        assert_eq!(limited.len(), 1);
    }

    #[test]
    fn shared_clones_stay_coherent() {
        // Clones of the wrapper share the cache: writes through one
        // clone invalidate reads through the other. Use an Arc'd mock
        // via HotCache directly to avoid needing a Clone mock.
        let cache = HotCache::new(small_cache());
        let cache2 = cache.clone();
        let Lookup::Miss { version } = cache.lookup(1) else {
            panic!();
        };
        assert!(cache.fill(1, b"v", version));
        assert!(matches!(cache2.lookup(1), Lookup::Hit(_)));
        cache2.invalidate(1);
        assert!(matches!(cache.lookup(1), Lookup::Miss { .. }));
    }
}
