//! NoveLSM (Kannan et al., ATC '18): an LSM redesigned for NVM. The
//! mutable memtable lives **directly in NVM** (no WAL, no serialization
//! through DRAM), and immutable tables are compacted into sorted runs.
//!
//! Reproduction shape: the memtable is an append-only region of NVM
//! segments with a DRAM skiplist-equivalent index (the crate's RB
//! tree); when the memtable region fills, it is merged with level-1
//! into fresh sorted-run segments and the old segments are freed.
//! Deletes write tombstones (vlen = 0xFFFF).

use crate::rbtree::RbTree;
use crate::store::{NodeId, NodeStore, Result, StoreError};
use crate::traits::NvmKvStore;

const HEADER: usize = 10;
const TOMBSTONE: u16 = u16::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct MemLoc {
    node_slot: usize,
    offset: usize,
    /// `None` = tombstone.
    len: Option<usize>,
}

/// One sorted run at level 1: contiguous sorted records across nodes.
#[derive(Debug)]
struct SortedRun {
    nodes: Vec<(NodeId, usize)>, // (node, bytes used)
    /// DRAM sparse index: key -> (node index in run, offset, len).
    index: RbTree<MemLoc>,
}

/// The NoveLSM-style store.
pub struct NoveLsm<S: NodeStore> {
    store: S,
    /// Memtable segments cap before a flush.
    memtable_cap: usize,
    mem_nodes: Vec<(NodeId, usize)>,
    mem_index: RbTree<MemLoc>,
    level1: Option<SortedRun>,
}

impl<S: NodeStore> NoveLsm<S> {
    /// Create with the given memtable size in segments.
    ///
    /// # Panics
    /// Panics if `memtable_segments == 0`.
    pub fn new(store: S, memtable_segments: usize) -> Self {
        assert!(memtable_segments > 0, "NoveLsm: zero memtable");
        Self {
            store,
            memtable_cap: memtable_segments,
            mem_nodes: Vec::new(),
            mem_index: RbTree::new(),
            level1: None,
        }
    }

    fn node_bytes(&self) -> usize {
        self.store.node_bytes()
    }

    fn append_record(&mut self, key: u64, value: Option<&[u8]>) -> Result<MemLoc> {
        let vlen = value.map(<[u8]>::len).unwrap_or(0);
        let rec_len = HEADER + vlen;
        let need_new = match self.mem_nodes.last() {
            Some(&(_, used)) => used + rec_len > self.node_bytes(),
            None => true,
        };
        if need_new {
            if self.mem_nodes.len() >= self.memtable_cap {
                self.flush()?;
            }
            let node = self.store.alloc()?;
            self.mem_nodes.push((node, 0));
        }
        let slot = self.mem_nodes.len() - 1;
        let (node, used) = *self.mem_nodes.last().expect("memtable nonempty");
        let mut rec = Vec::with_capacity(rec_len);
        rec.extend_from_slice(&key.to_le_bytes());
        let wire_len = if value.is_some() {
            vlen as u16
        } else {
            TOMBSTONE
        };
        rec.extend_from_slice(&wire_len.to_le_bytes());
        if let Some(v) = value {
            rec.extend_from_slice(v);
        }
        self.store.write_at(node, used, &rec)?;
        self.mem_nodes.last_mut().expect("memtable nonempty").1 = used + rec_len;
        Ok(MemLoc {
            node_slot: slot,
            offset: used + HEADER,
            len: value.map(|_| vlen),
        })
    }

    /// Merge the memtable with level 1 into a fresh sorted run.
    fn flush(&mut self) -> Result<()> {
        // Materialize the merged view: memtable wins over level 1;
        // tombstones drop keys.
        let mut merged: Vec<(u64, Vec<u8>)> = Vec::new();
        let mem_keys: std::collections::BTreeMap<u64, MemLoc> = self
            .mem_index
            .range(0, u64::MAX)
            .into_iter()
            .map(|(k, loc)| (k, *loc))
            .collect();
        // Level-1 survivors not shadowed by the memtable.
        if let Some(run) = &self.level1 {
            let l1: Vec<(u64, MemLoc)> = run
                .index
                .range(0, u64::MAX)
                .into_iter()
                .map(|(k, loc)| (k, *loc))
                .collect();
            for (k, loc) in l1 {
                if mem_keys.contains_key(&k) {
                    continue;
                }
                if let Some(len) = loc.len {
                    let node = self.level1.as_ref().expect("run exists").nodes[loc.node_slot].0;
                    let image = self.store.read(node)?;
                    merged.push((k, image[loc.offset..loc.offset + len].to_vec()));
                }
            }
        }
        for (k, loc) in &mem_keys {
            if let Some(len) = loc.len {
                let node = self.mem_nodes[loc.node_slot].0;
                let image = self.store.read(node)?;
                merged.push((*k, image[loc.offset..loc.offset + len].to_vec()));
            }
        }
        merged.sort_by_key(|(k, _)| *k);

        // Write the new sorted run.
        let mut run = SortedRun {
            nodes: Vec::new(),
            index: RbTree::new(),
        };
        for (k, v) in &merged {
            let rec_len = HEADER + v.len();
            let need_new = match run.nodes.last() {
                Some(&(_, used)) => used + rec_len > self.node_bytes(),
                None => true,
            };
            if need_new {
                run.nodes.push((self.store.alloc()?, 0));
            }
            let slot = run.nodes.len() - 1;
            let (node, used) = *run.nodes.last().expect("run nonempty");
            let mut rec = Vec::with_capacity(rec_len);
            rec.extend_from_slice(&k.to_le_bytes());
            rec.extend_from_slice(&(v.len() as u16).to_le_bytes());
            rec.extend_from_slice(v);
            self.store.write_at(node, used, &rec)?;
            run.nodes.last_mut().expect("run nonempty").1 = used + rec_len;
            run.index.insert(
                *k,
                MemLoc {
                    node_slot: slot,
                    offset: used + HEADER,
                    len: Some(v.len()),
                },
            );
        }

        // Free the old memtable and the old run.
        for (node, _) in self.mem_nodes.drain(..) {
            self.store.free(node)?;
        }
        self.mem_index = RbTree::new();
        if let Some(old) = self.level1.take() {
            for (node, _) in old.nodes {
                self.store.free(node)?;
            }
        }
        self.level1 = Some(run);
        Ok(())
    }

    fn read_loc(&mut self, nodes: &[(NodeId, usize)], loc: MemLoc) -> Result<Option<Vec<u8>>> {
        let Some(len) = loc.len else {
            return Ok(None);
        };
        let node = nodes[loc.node_slot].0;
        let image = self.store.read(node)?;
        Ok(Some(image[loc.offset..loc.offset + len].to_vec()))
    }

    /// Memtable segments currently in use (diagnostics).
    pub fn memtable_segments(&self) -> usize {
        self.mem_nodes.len()
    }
}

impl<S: NodeStore> NvmKvStore for NoveLsm<S> {
    fn name(&self) -> &'static str {
        "NoveLSM"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        if HEADER + value.len() > self.node_bytes() {
            return Err(StoreError::Sim(e2nvm_sim::SimError::SizeMismatch {
                expected: self.node_bytes() - HEADER,
                actual: value.len(),
            }));
        }
        let loc = self.append_record(key, Some(value))?;
        self.mem_index.insert(key, loc);
        Ok(())
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        if let Some(loc) = self.mem_index.get(key).copied() {
            let nodes = self.mem_nodes.clone();
            return self.read_loc(&nodes, loc);
        }
        if let Some(run) = &self.level1 {
            if let Some(loc) = run.index.get(key).copied() {
                let nodes = run.nodes.clone();
                return self.read_loc(&nodes, loc);
            }
        }
        Ok(None)
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        let existed = self.get(key)?.is_some();
        if existed {
            let loc = self.append_record(key, None)?;
            self.mem_index.insert(key, loc);
        }
        Ok(existed)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        // Merge memtable view over level-1 view.
        let mem: Vec<(u64, MemLoc)> = self
            .mem_index
            .range(lo, hi)
            .into_iter()
            .map(|(k, loc)| (k, *loc))
            .collect();
        let l1: Vec<(u64, MemLoc)> = self
            .level1
            .as_ref()
            .map(|run| {
                run.index
                    .range(lo, hi)
                    .into_iter()
                    .map(|(k, loc)| (k, *loc))
                    .collect()
            })
            .unwrap_or_default();
        let mem_keys: std::collections::HashSet<u64> = mem.iter().map(|(k, _)| *k).collect();
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for (k, loc) in mem {
            let nodes = self.mem_nodes.clone();
            if let Some(v) = self.read_loc(&nodes, loc)? {
                out.push((k, v));
            }
        }
        for (k, loc) in l1 {
            if mem_keys.contains(&k) {
                continue;
            }
            let nodes = self.level1.as_ref().expect("run exists").nodes.clone();
            if let Some(v) = self.read_loc(&nodes, loc)? {
                out.push((k, v));
            }
        }
        out.sort_by_key(|(k, _)| *k);
        Ok(out)
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.store.stats()
    }

    fn reset_stats(&mut self) {
        self.store.reset_stats();
    }

    fn maintenance(&mut self) {
        self.store.maintenance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DirectNodeStore;
    use crate::traits::check_against_shadow;
    use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};

    fn lsm(segments: usize, seg_bytes: usize, mem_cap: usize) -> NoveLsm<DirectNodeStore> {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(segments)
                .build()
                .unwrap(),
        );
        NoveLsm::new(
            DirectNodeStore::new(MemoryController::without_wear_leveling(dev)),
            mem_cap,
        )
    }

    #[test]
    fn basic_crud() {
        let mut l = lsm(16, 128, 2);
        l.put(1, b"one").unwrap();
        l.put(2, b"two").unwrap();
        assert_eq!(l.get(1).unwrap().unwrap(), b"one");
        l.put(1, b"ONE").unwrap();
        assert_eq!(l.get(1).unwrap().unwrap(), b"ONE");
        assert!(l.delete(1).unwrap());
        assert_eq!(l.get(1).unwrap(), None);
        assert!(!l.delete(1).unwrap());
    }

    #[test]
    fn flush_and_read_from_level1() {
        let mut l = lsm(128, 64, 2);
        // Enough writes to force several flushes.
        for k in 0..40u64 {
            l.put(k, &[k as u8; 16]).unwrap();
        }
        assert!(l.level1.is_some(), "never flushed");
        for k in 0..40u64 {
            assert_eq!(l.get(k).unwrap().unwrap(), vec![k as u8; 16], "key {k}");
        }
    }

    #[test]
    fn tombstones_survive_flush() {
        let mut l = lsm(32, 64, 1);
        for k in 0..10u64 {
            l.put(k, &[1u8; 16]).unwrap();
        }
        l.delete(5).unwrap();
        // Force a flush cycle.
        for k in 10..30u64 {
            l.put(k, &[2u8; 16]).unwrap();
        }
        assert_eq!(l.get(5).unwrap(), None);
        assert_eq!(l.get(4).unwrap().unwrap(), vec![1u8; 16]);
    }

    #[test]
    fn scan_merges_levels() {
        let mut l = lsm(32, 64, 1);
        for k in 0..20u64 {
            l.put(k, &k.to_le_bytes()).unwrap();
        }
        // Overwrite some keys post-flush so the memtable shadows L1.
        l.put(3, b"fresh3xx").unwrap();
        let result = l.scan(2, 4).unwrap();
        let keys: Vec<u64> = result.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3, 4]);
        assert_eq!(result[1].1, b"fresh3xx");
    }

    #[test]
    fn shadow_stress() {
        let mut l = lsm(128, 256, 2);
        check_against_shadow(&mut l, 700, 12, 19).unwrap();
    }

    #[test]
    fn memtable_capacity_respected() {
        let mut l = lsm(64, 64, 2);
        for k in 0..200u64 {
            l.put(k % 8, &[k as u8; 20]).unwrap();
            assert!(l.memtable_segments() <= 2);
        }
    }
}
