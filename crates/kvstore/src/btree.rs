//! A B+-tree with NVM-resident leaves (Chen & Jin, VLDB '15 style).
//!
//! Leaves keep their entries **sorted**, which is why the paper's
//! Figure 12 shows the plain B+-tree with the worst bit-flip behaviour:
//! every insert shifts the tail of the leaf, rewriting bytes whose
//! content changed ("the items in leaf nodes need to be sorted, which
//! increases the number of movements and bit flips"). Inner routing
//! lives in DRAM (a sorted leaf directory), as in FP-Tree-era designs.

use crate::store::{NodeId, NodeStore, Result, StoreError};
use crate::traits::NvmKvStore;
use std::collections::BTreeMap;

/// Leaf image layout:
/// `[n: u16][(key: u64, vlen: u16, value bytes) * n]`, keys ascending.
fn serialize_leaf(entries: &[(u64, Vec<u8>)], node_bytes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(node_bytes);
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for (k, v) in entries {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&(v.len() as u16).to_le_bytes());
        out.extend_from_slice(v);
    }
    assert!(
        out.len() <= node_bytes,
        "leaf overflow: {} bytes",
        out.len()
    );
    out
}

fn leaf_size(entries: &[(u64, Vec<u8>)]) -> usize {
    2 + entries.iter().map(|(_, v)| 10 + v.len()).sum::<usize>()
}

/// Inverse of [`serialize_leaf`] (recovery path).
fn deserialize_leaf(image: &[u8]) -> Vec<(u64, Vec<u8>)> {
    let n = u16::from_le_bytes([image[0], image[1]]) as usize;
    let mut entries = Vec::with_capacity(n);
    let mut off = 2;
    for _ in 0..n {
        if off + 10 > image.len() {
            break; // torn/corrupt tail: keep the prefix
        }
        let key = u64::from_le_bytes(image[off..off + 8].try_into().expect("8 bytes"));
        let vlen =
            u16::from_le_bytes(image[off + 8..off + 10].try_into().expect("2 bytes")) as usize;
        if off + 10 + vlen > image.len() {
            break;
        }
        entries.push((key, image[off + 10..off + 10 + vlen].to_vec()));
        off += 10 + vlen;
    }
    entries
}

/// The B+-tree.
#[allow(clippy::type_complexity)] // (node, cached entries) pairs read clearly in context
pub struct BPlusTree<S: NodeStore> {
    store: S,
    /// DRAM leaf directory: lower bound key -> (node, cached entries).
    /// Entries are cached in DRAM to avoid re-deserializing on every
    /// access; NVM always holds the serialized truth.
    leaves: BTreeMap<u64, (NodeId, Vec<(u64, Vec<u8>)>)>,
}

impl<S: NodeStore> BPlusTree<S> {
    /// An empty tree over a node store.
    pub fn new(store: S) -> Self {
        Self {
            store,
            leaves: BTreeMap::new(),
        }
    }

    /// Rebuild the DRAM leaf directory from persisted leaf images after
    /// a crash. `nodes` is the set of leaf nodes owned by this tree
    /// (durable allocator metadata — persisted out of band in real PM
    /// systems).
    pub fn recover(mut store: S, nodes: &[NodeId]) -> Result<Self> {
        let mut leaves = BTreeMap::new();
        for &node in nodes {
            let image = store.read(node)?;
            let entries = deserialize_leaf(&image);
            match entries.first() {
                Some(&(lower, _)) => {
                    leaves.insert(lower, (node, entries));
                }
                None => {
                    // An empty leaf image: return the node.
                    store.free(node)?;
                }
            }
        }
        Ok(Self { store, leaves })
    }

    /// Consume the structure, returning the node store (simulates a
    /// crash: all DRAM state is dropped; NVM contents survive).
    pub fn into_store(self) -> S {
        self.store
    }

    /// The NVM nodes currently owned by the tree (for durable allocator
    /// metadata / recovery tests).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.leaves.values().map(|(n, _)| *n).collect()
    }

    fn leaf_for(&self, key: u64) -> Option<u64> {
        self.leaves.range(..=key).next_back().map(|(&lb, _)| lb)
    }

    fn persist(&mut self, lower: u64) -> Result<()> {
        let node_bytes = self.store.node_bytes();
        let (node, entries) = self.leaves.get(&lower).expect("leaf exists");
        let image = serialize_leaf(entries, node_bytes);
        let node = *node;
        self.store.write(node, &image)?;
        Ok(())
    }
}

impl<S: NodeStore> NvmKvStore for BPlusTree<S> {
    fn name(&self) -> &'static str {
        "B+-Tree"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        let node_bytes = self.store.node_bytes();
        let max_entry = 10 + value.len();
        if max_entry + 2 > node_bytes {
            return Err(StoreError::Sim(e2nvm_sim::SimError::SizeMismatch {
                expected: node_bytes - 12,
                actual: value.len(),
            }));
        }
        let lower = match self.leaf_for(key) {
            Some(lb) => lb,
            None => {
                // First leaf (or key below every lower bound): create or
                // extend the leftmost leaf's range.
                if let Some((&first, _)) = self.leaves.iter().next() {
                    // Re-key the leftmost leaf to cover this key.
                    let leaf = self.leaves.remove(&first).expect("leaf exists");
                    self.leaves.insert(key, leaf);
                    key
                } else {
                    let node = self.store.alloc()?;
                    self.leaves.insert(key, (node, Vec::new()));
                    key
                }
            }
        };
        {
            let (_, entries) = self.leaves.get_mut(&lower).expect("leaf exists");
            match entries.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => entries[i].1 = value.to_vec(),
                Err(i) => entries.insert(i, (key, value.to_vec())),
            }
        }
        // Split if the serialized image no longer fits.
        let needs_split = {
            let (_, entries) = self.leaves.get(&lower).expect("leaf exists");
            leaf_size(entries) > node_bytes
        };
        if needs_split {
            let (node, mut entries) = self.leaves.remove(&lower).expect("leaf exists");
            let mid = entries.len() / 2;
            let right_entries = entries.split_off(mid);
            let right_lower = right_entries[0].0;
            let right_node = self.store.alloc()?;
            self.leaves.insert(lower, (node, entries));
            self.leaves.insert(right_lower, (right_node, right_entries));
            self.persist(lower)?;
            self.persist(right_lower)?;
        } else {
            self.persist(lower)?;
        }
        Ok(())
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        let Some(lower) = self.leaf_for(key) else {
            return Ok(None);
        };
        let (_, entries) = self.leaves.get(&lower).expect("leaf exists");
        Ok(entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| entries[i].1.clone()))
    }

    fn delete(&mut self, key: u64) -> Result<bool> {
        let Some(lower) = self.leaf_for(key) else {
            return Ok(false);
        };
        let removed = {
            let (_, entries) = self.leaves.get_mut(&lower).expect("leaf exists");
            match entries.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => {
                    entries.remove(i);
                    true
                }
                Err(_) => false,
            }
        };
        if !removed {
            return Ok(false);
        }
        let empty = self.leaves.get(&lower).expect("leaf exists").1.is_empty();
        if empty {
            let (node, _) = self.leaves.remove(&lower).expect("leaf exists");
            self.store.free(node)?;
        } else {
            self.persist(lower)?;
        }
        Ok(true)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let start = self.leaf_for(lo).unwrap_or(lo);
        let mut out = Vec::new();
        for (_, (_, entries)) in self.leaves.range(start..=hi) {
            for (k, v) in entries {
                if *k >= lo && *k <= hi {
                    out.push((*k, v.clone()));
                }
            }
        }
        Ok(out)
    }

    fn stats(&self) -> e2nvm_sim::DeviceStats {
        self.store.stats()
    }

    fn reset_stats(&mut self) {
        self.store.reset_stats();
    }

    fn maintenance(&mut self) {
        self.store.maintenance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DirectNodeStore;
    use crate::traits::check_against_shadow;
    use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};

    fn tree(segments: usize, seg_bytes: usize) -> BPlusTree<DirectNodeStore> {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(segments)
                .build()
                .unwrap(),
        );
        BPlusTree::new(DirectNodeStore::new(
            MemoryController::without_wear_leveling(dev),
        ))
    }

    #[test]
    fn basic_crud() {
        let mut t = tree(16, 128);
        t.put(5, b"five").unwrap();
        t.put(1, b"one").unwrap();
        assert_eq!(t.get(5).unwrap().unwrap(), b"five");
        assert_eq!(t.get(2).unwrap(), None);
        assert!(t.delete(5).unwrap());
        assert!(!t.delete(5).unwrap());
        assert_eq!(t.get(5).unwrap(), None);
    }

    #[test]
    fn splits_preserve_order() {
        let mut t = tree(64, 64);
        for k in 0..100u64 {
            t.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(t.leaves.len() > 1, "tree never split");
        let all = t.scan(0, u64::MAX).unwrap();
        let keys: Vec<u64> = all.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn insert_below_first_leaf() {
        let mut t = tree(16, 128);
        t.put(100, b"hundred").unwrap();
        t.put(5, b"five").unwrap();
        assert_eq!(t.get(5).unwrap().unwrap(), b"five");
        assert_eq!(t.get(100).unwrap().unwrap(), b"hundred");
    }

    #[test]
    fn shadow_stress() {
        let mut t = tree(128, 128);
        check_against_shadow(&mut t, 800, 12, 7).unwrap();
    }

    #[test]
    fn sorted_inserts_cause_shift_flips() {
        // Inserting in the middle of a sorted leaf rewrites the tail —
        // the defining cost of Figure 12's B+-tree bar.
        // Distinct values per key: shifting moves real content, so the
        // rewrite cost is visible (identical values would shift almost
        // for free).
        let mut t = tree(16, 256);
        let val = |k: u64| [(k as u8).wrapping_mul(37); 8];
        for k in (1..13u64).map(|i| i * 2) {
            t.put(k, &val(k)).unwrap();
        }
        t.reset_stats();
        t.put(1, &val(1)).unwrap(); // shifts every entry right
        let shift_flips = t.stats().bits_flipped;
        t.reset_stats();
        t.put(100, &val(100)).unwrap(); // appends at the end
        let append_flips = t.stats().bits_flipped;
        assert!(
            shift_flips > append_flips * 2,
            "shift={shift_flips} append={append_flips}"
        );
    }

    #[test]
    fn oversized_value_rejected() {
        let mut t = tree(8, 32);
        assert!(t.put(1, &[0u8; 64]).is_err());
    }

    #[test]
    fn empty_leaf_freed_on_delete() {
        let mut t = tree(4, 64);
        t.put(1, b"x").unwrap();
        let free_before = t.store.free_capacity();
        t.delete(1).unwrap();
        assert_eq!(t.store.free_capacity(), free_before + 1);
        assert!(t.scan(0, u64::MAX).unwrap().is_empty());
    }
}
