//! The node-store abstraction that lets every index structure run
//! either **directly** on NVM (update-in-place, arbitrary placement) or
//! **plugged into E2-NVM** (copy-on-write node images placed by content
//! similarity) — the two bars per structure in the paper's Figure 12.
//!
//! Index structures address *logical nodes*; the store maps nodes to
//! device segments. `DirectNodeStore` pins each node to a fixed segment
//! and supports partial in-place writes (what FP-Tree's slot updates and
//! Path Hashing's cell writes need). `E2NodeStore` routes every node
//! image through an [`E2Engine`]'s placement model: the write lands on
//! the free segment whose old content is most similar, and the node's
//! previous segment is recycled into the pool.

use e2nvm_core::{E2Engine, E2Error};
use e2nvm_sim::{DeviceStats, LogicalSegment, MemoryController, SimError, WriteReport};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Logical node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

/// Errors from node stores.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// No free segment available.
    OutOfSpace,
    /// The store is in degraded mode: worn-out segments have been
    /// permanently retired, and the shrunken pool has now run dry.
    /// Previously written data stays readable; only new placements
    /// fail.
    Degraded {
        /// Number of segments permanently retired by wear-out.
        retired: usize,
    },
    /// The node id was never allocated (or already freed).
    UnknownNode(NodeId),
    /// An invalid configuration was rejected at build time (e.g. a
    /// [`crate::CacheConfig`] with a non-power-of-two shard count).
    Config(String),
    /// Device-level failure.
    Sim(SimError),
    /// E2 engine failure (the original error, not a rendered string, so
    /// callers can still match on the cause).
    Engine(E2Error),
    /// Persistence-layer failure (WAL append, snapshot IO, recovery
    /// decode). Rendered to a string because IO errors are not
    /// `Clone`/`PartialEq`.
    Persistence(String),
    /// Cluster routing failure: every server in the key's hash-ring
    /// replica set is down or draining, so there is nowhere to route
    /// the operation. Raised by the `e2nvm-cluster` router; typed here
    /// so clustered stores speak the same error language as single-node
    /// ones through [`crate::NvmKvStore`].
    Unroutable {
        /// The key that could not be routed.
        key: u64,
    },
    /// Cluster replication failure: a replicated write was acknowledged
    /// by fewer servers than the policy requires (the mutation may
    /// still exist on the servers that did ack — callers retry or
    /// surface the partial state, they must not assume it was applied
    /// nowhere). Raised by the `e2nvm-cluster` replicator.
    ReplicationFailed {
        /// Replicas that acknowledged the write.
        acked: usize,
        /// Acknowledgements the policy required.
        required: usize,
    },
    /// A remote server answered a cluster operation with an error
    /// frame (rendered to a string — the typed wire statuses live in
    /// the server crate, which this crate cannot depend on). Raised by
    /// the `e2nvm-cluster` router when every replica rejects an
    /// operation at the store level rather than the transport level.
    Remote(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OutOfSpace => write!(f, "node store out of space"),
            StoreError::Degraded { retired } => write!(
                f,
                "node store degraded: pool dry after {retired} segments retired by wear-out"
            ),
            StoreError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            StoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            StoreError::Sim(e) => write!(f, "device error: {e}"),
            StoreError::Engine(e) => write!(f, "E2 engine error: {e}"),
            StoreError::Persistence(msg) => write!(f, "persistence error: {msg}"),
            StoreError::Unroutable { key } => write!(
                f,
                "cluster unroutable: every replica for key {key} is down or draining"
            ),
            StoreError::ReplicationFailed { acked, required } => write!(
                f,
                "cluster replication failed: {acked} of {required} required \
                 replica acknowledgements"
            ),
            StoreError::Remote(msg) => write!(f, "remote store error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Sim(e) => Some(e),
            StoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for StoreError {
    fn from(e: SimError) -> Self {
        StoreError::Sim(e)
    }
}

impl From<E2Error> for StoreError {
    fn from(e: E2Error) -> Self {
        match e {
            E2Error::OutOfSpace => StoreError::OutOfSpace,
            E2Error::PoolDepleted { retired } => StoreError::Degraded { retired },
            E2Error::Sim(e) => StoreError::Sim(e),
            other => StoreError::Engine(other),
        }
    }
}

impl From<e2nvm_persist::PersistError> for StoreError {
    fn from(e: e2nvm_persist::PersistError) -> Self {
        StoreError::Persistence(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Node-granular storage over NVM.
pub trait NodeStore {
    /// Reserve a fresh logical node (no segment is consumed until the
    /// first write in the E2 store).
    fn alloc(&mut self) -> Result<NodeId>;

    /// Release a node and its segment.
    fn free(&mut self, node: NodeId) -> Result<()>;

    /// Write a full node image (`data.len() <= node_bytes`; the
    /// remainder of the segment keeps its previous bytes).
    fn write(&mut self, node: NodeId, data: &[u8]) -> Result<WriteReport>;

    /// Partial write at a byte offset within the node. Direct stores do
    /// this in place; the E2 store falls back to read-modify-write of
    /// the full image (copy-on-write placement cannot patch in place).
    fn write_at(&mut self, node: NodeId, offset: usize, data: &[u8]) -> Result<WriteReport>;

    /// Read the full node image.
    fn read(&mut self, node: NodeId) -> Result<Vec<u8>>;

    /// Node capacity in bytes (== device segment size).
    fn node_bytes(&self) -> usize;

    /// Device statistics.
    fn stats(&self) -> DeviceStats;

    /// Reset device statistics.
    fn reset_stats(&mut self);

    /// Free nodes remaining.
    fn free_capacity(&self) -> usize;

    /// Store flavor name ("direct" / "e2").
    fn flavor(&self) -> &'static str;

    /// Periodic maintenance (model retraining for the E2 store).
    fn maintenance(&mut self) {}
}

impl<T: NodeStore + ?Sized> NodeStore for Box<T> {
    fn alloc(&mut self) -> Result<NodeId> {
        (**self).alloc()
    }
    fn free(&mut self, node: NodeId) -> Result<()> {
        (**self).free(node)
    }
    fn write(&mut self, node: NodeId, data: &[u8]) -> Result<WriteReport> {
        (**self).write(node, data)
    }
    fn write_at(&mut self, node: NodeId, offset: usize, data: &[u8]) -> Result<WriteReport> {
        (**self).write_at(node, offset, data)
    }
    fn read(&mut self, node: NodeId) -> Result<Vec<u8>> {
        (**self).read(node)
    }
    fn node_bytes(&self) -> usize {
        (**self).node_bytes()
    }
    fn stats(&self) -> DeviceStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
    fn free_capacity(&self) -> usize {
        (**self).free_capacity()
    }
    fn flavor(&self) -> &'static str {
        (**self).flavor()
    }
    fn maintenance(&mut self) {
        (**self).maintenance()
    }
}

/// Update-in-place store: nodes pinned to fixed segments handed out in
/// address order (arbitrary placement — what the paper's baselines do).
pub struct DirectNodeStore {
    controller: MemoryController,
    free: VecDeque<LogicalSegment>,
    map: HashMap<NodeId, LogicalSegment>,
    next: u64,
}

impl DirectNodeStore {
    /// Build over a controller, with every segment initially free.
    pub fn new(controller: MemoryController) -> Self {
        let free = (0..controller.num_segments()).map(LogicalSegment).collect();
        Self {
            controller,
            free,
            map: HashMap::new(),
            next: 0,
        }
    }

    fn seg(&self, node: NodeId) -> Result<LogicalSegment> {
        self.map
            .get(&node)
            .copied()
            .ok_or(StoreError::UnknownNode(node))
    }
}

impl NodeStore for DirectNodeStore {
    fn alloc(&mut self) -> Result<NodeId> {
        let seg = self.free.pop_front().ok_or(StoreError::OutOfSpace)?;
        let node = NodeId(self.next);
        self.next += 1;
        self.map.insert(node, seg);
        Ok(node)
    }

    fn free(&mut self, node: NodeId) -> Result<()> {
        let seg = self
            .map
            .remove(&node)
            .ok_or(StoreError::UnknownNode(node))?;
        self.free.push_back(seg);
        Ok(())
    }

    fn write(&mut self, node: NodeId, data: &[u8]) -> Result<WriteReport> {
        let seg = self.seg(node)?;
        Ok(self.controller.write_at(seg, 0, data)?)
    }

    fn write_at(&mut self, node: NodeId, offset: usize, data: &[u8]) -> Result<WriteReport> {
        let seg = self.seg(node)?;
        Ok(self.controller.write_at(seg, offset, data)?)
    }

    fn read(&mut self, node: NodeId) -> Result<Vec<u8>> {
        let seg = self.seg(node)?;
        Ok(self.controller.read(seg)?)
    }

    fn node_bytes(&self) -> usize {
        self.controller.device().config().segment_bytes
    }

    fn stats(&self) -> DeviceStats {
        self.controller.stats().clone()
    }

    fn reset_stats(&mut self) {
        self.controller.reset_stats();
    }

    fn free_capacity(&self) -> usize {
        self.free.len()
    }

    fn flavor(&self) -> &'static str {
        "direct"
    }
}

/// Copy-on-write store over an [`E2Engine`]: every node image write is
/// placed on the most content-similar free segment.
pub struct E2NodeStore {
    engine: E2Engine,
    map: HashMap<NodeId, LogicalSegment>,
    next: u64,
}

impl E2NodeStore {
    /// Build over a *trained* engine.
    ///
    /// # Panics
    /// Panics if the engine has not been trained.
    pub fn new(engine: E2Engine) -> Self {
        assert!(engine.is_trained(), "E2NodeStore: engine must be trained");
        Self {
            engine,
            map: HashMap::new(),
            next: 0,
        }
    }

    /// Borrow the engine (retraining, stats).
    pub fn engine_mut(&mut self) -> &mut E2Engine {
        &mut self.engine
    }
}

impl NodeStore for E2NodeStore {
    fn alloc(&mut self) -> Result<NodeId> {
        // Lazy: the segment is chosen at first write, when the content
        // is known — that is the entire point of memory-aware placement.
        let node = NodeId(self.next);
        self.next += 1;
        Ok(node)
    }

    fn free(&mut self, node: NodeId) -> Result<()> {
        if let Some(seg) = self.map.remove(&node) {
            self.engine.recycle_segment(seg)?;
        }
        Ok(())
    }

    fn write(&mut self, node: NodeId, data: &[u8]) -> Result<WriteReport> {
        // For an already-placed node, compare updating it in place
        // against relocating to the best-matching free segment and keep
        // the cheaper option — an E2-NVM integration only redirects a
        // write when the move pays for itself.
        if let Some(&cur) = self.map.get(&node) {
            let in_place_flips = {
                let content = self.engine.controller().peek(cur)?;
                e2nvm_sim::bitops::hamming(&content[..data.len()], data)
            };
            let relocate = self.engine.preview_placement(data)?;
            if relocate.map_or(true, |(_, cand_flips)| in_place_flips <= cand_flips) {
                return Ok(self.engine.controller_mut().write_at(cur, 0, data)?);
            }
        }
        let (seg, report) = self.engine.place_value(data)?;
        if let Some(old) = self.map.insert(node, seg) {
            self.engine.recycle_segment(old)?;
        }
        Ok(report)
    }

    fn write_at(&mut self, node: NodeId, offset: usize, data: &[u8]) -> Result<WriteReport> {
        // E2-NVM intercepts *segment-granular* writes (new data items /
        // node images). A sub-segment update to an already-placed node
        // is not a new item: patch it in place, exactly as the direct
        // store would. Only the node's *first* write goes through
        // placement (as a full image).
        if let Some(&seg) = self.map.get(&node) {
            return Ok(self.engine.controller_mut().write_at(seg, offset, data)?);
        }
        // First write of this node: place by the record's content and
        // write only the record — the rest of the segment keeps the
        // recycled content (never semantically read before it is
        // written), so it costs no flips.
        if offset + data.len() > self.node_bytes() {
            return Err(StoreError::Sim(SimError::RangeOutOfBounds {
                offset,
                len: data.len(),
                segment_bytes: self.node_bytes(),
            }));
        }
        let (seg, report) = self.engine.place_at(offset, data)?;
        self.map.insert(node, seg);
        Ok(report)
    }

    fn read(&mut self, node: NodeId) -> Result<Vec<u8>> {
        let seg = self
            .map
            .get(&node)
            .copied()
            .ok_or(StoreError::UnknownNode(node))?;
        Ok(self.engine.controller_mut().read(seg)?)
    }

    fn node_bytes(&self) -> usize {
        self.engine.config().segment_bytes
    }

    fn stats(&self) -> DeviceStats {
        self.engine.device_stats().clone()
    }

    fn reset_stats(&mut self) {
        self.engine.reset_device_stats();
    }

    fn free_capacity(&self) -> usize {
        self.engine.free_count()
    }

    fn flavor(&self) -> &'static str {
        "e2"
    }

    fn maintenance(&mut self) {
        // Retrain on the current free pool — by now it holds recycled
        // node images, which is exactly what future writes will look
        // like.
        let _ = self.engine.train();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_core::E2Config;
    use e2nvm_sim::{DeviceConfig, NvmDevice};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn direct(n: usize, bytes: usize) -> DirectNodeStore {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(bytes)
                .num_segments(n)
                .build()
                .unwrap(),
        );
        DirectNodeStore::new(MemoryController::without_wear_leveling(dev))
    }

    fn e2(n: usize, bytes: usize) -> E2NodeStore {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(bytes)
                .num_segments(n)
                .build()
                .unwrap(),
        );
        let cfg = E2Config::builder()
            .fast(bytes, 2)
            .pretrain_epochs(5)
            .joint_epochs(1)
            .padding_type(e2nvm_core::PaddingType::Zero)
            .build()
            .unwrap();
        let mut engine = E2Engine::new(MemoryController::without_wear_leveling(dev), cfg).unwrap();
        // Seed clusterable content so training has structure.
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..n {
            let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
            let content: Vec<u8> = (0..bytes)
                .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                .collect();
            engine
                .controller_mut()
                .seed(e2nvm_sim::LogicalSegment(i), &content)
                .unwrap();
        }
        engine.train().unwrap();
        E2NodeStore::new(engine)
    }

    fn roundtrip(store: &mut dyn NodeStore) {
        let a = store.alloc().unwrap();
        let b = store.alloc().unwrap();
        store.write(a, &[1u8; 32]).unwrap();
        store.write(b, &[2u8; 32]).unwrap();
        assert_eq!(&store.read(a).unwrap()[..32], &[1u8; 32]);
        assert_eq!(&store.read(b).unwrap()[..32], &[2u8; 32]);
        // Partial update.
        store.write_at(a, 4, &[9u8; 4]).unwrap();
        let img = store.read(a).unwrap();
        assert_eq!(&img[..4], &[1u8; 4]);
        assert_eq!(&img[4..8], &[9u8; 4]);
        assert_eq!(&img[8..32], &[1u8; 24]);
        store.free(a).unwrap();
        assert!(matches!(store.read(a), Err(StoreError::UnknownNode(_))));
    }

    #[test]
    fn direct_roundtrip() {
        let mut s = direct(8, 64);
        roundtrip(&mut s);
        assert_eq!(s.flavor(), "direct");
    }

    #[test]
    fn e2_roundtrip() {
        let mut s = e2(24, 64);
        roundtrip(&mut s);
        assert_eq!(s.flavor(), "e2");
    }

    #[test]
    fn direct_out_of_space() {
        let mut s = direct(2, 64);
        s.alloc().unwrap();
        s.alloc().unwrap();
        assert!(matches!(s.alloc(), Err(StoreError::OutOfSpace)));
    }

    #[test]
    fn e2_rewrite_moves_segment_and_recycles() {
        let mut s = e2(24, 64);
        let node = s.alloc().unwrap();
        let free_before = s.free_capacity();
        s.write(node, &[0u8; 64]).unwrap();
        assert_eq!(s.free_capacity(), free_before - 1);
        // Rewrite: still exactly one segment held.
        s.write(node, &[0xFFu8; 64]).unwrap();
        assert_eq!(s.free_capacity(), free_before - 1);
        assert_eq!(s.read(node).unwrap(), vec![0xFFu8; 64]);
    }

    #[test]
    fn e2_placement_beats_direct_on_clusterable_content() {
        // Alternate writing zeros-like and ones-like images: E2 routes
        // each to a like-contented segment, the direct store writes
        // wherever the next free segment happens to be.
        // The write stream is NOT alternating (first all zeros-like,
        // then all ones-like) while the device's free segments alternate
        // families by address — so allocation-order placement is wrong
        // for half the writes while content-aware placement never is.
        let run = |store: &mut dyn NodeStore| -> u64 {
            let mut rng = StdRng::seed_from_u64(17);
            store.reset_stats();
            for i in 0..16 {
                let node = store.alloc().unwrap();
                let base = if i < 8 { 0x00u8 } else { 0xFF };
                let img: Vec<u8> = (0..64)
                    .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                    .collect();
                store.write(node, &img).unwrap();
            }
            store.stats().bits_flipped
        };
        // Direct store over a device seeded with the same alternating
        // content (so the comparison is placement-only).
        let mut d = direct(64, 64);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..64 {
            let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
            let content: Vec<u8> = (0..64)
                .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                .collect();
            d.controller.seed(LogicalSegment(i), &content).unwrap();
        }
        // A slightly larger training budget than `e2()`: with only 5
        // pretrain epochs the joint model's cluster separation is at the
        // mercy of the RNG stream, and the 2x margin below is a claim
        // about converged placement, not about a lucky init.
        let mut e = {
            let dev = NvmDevice::new(
                DeviceConfig::builder()
                    .segment_bytes(64)
                    .num_segments(64)
                    .build()
                    .unwrap(),
            );
            let cfg = E2Config::builder()
                .fast(64, 2)
                .pretrain_epochs(12)
                .joint_epochs(3)
                .padding_type(e2nvm_core::PaddingType::Zero)
                .build()
                .unwrap();
            let mut engine =
                E2Engine::new(MemoryController::without_wear_leveling(dev), cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            for i in 0..64 {
                let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
                let content: Vec<u8> = (0..64)
                    .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                    .collect();
                engine
                    .controller_mut()
                    .seed(e2nvm_sim::LogicalSegment(i), &content)
                    .unwrap();
            }
            engine.train().unwrap();
            E2NodeStore::new(engine)
        };
        let direct_flips = run(&mut d);
        let e2_flips = run(&mut e);
        assert!(
            e2_flips * 2 < direct_flips,
            "e2={e2_flips} direct={direct_flips}"
        );
    }
}
