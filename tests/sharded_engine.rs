//! Integration tests for the sharded serving engine: cross-shard
//! correctness under concurrency, per-key consistency, scan merging,
//! and the stats-aggregation property (merged shard stats must equal a
//! single engine's stats for the same write sequence routed to one
//! shard).

use e2nvm::core::{E2Config, E2Engine, PaddingType, ShardedEngine};
use e2nvm::sim::{partition_controllers, DeviceConfig, LogicalSegment, MemoryController};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const SEG_BYTES: usize = 32;

fn test_config() -> E2Config {
    E2Config::builder()
        .fast(SEG_BYTES, 2)
        .pretrain_epochs(4)
        .joint_epochs(1)
        // No background retraining: keeps placement deterministic so the
        // stats property below is exact.
        .retrain_min_free(0)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap()
}

/// Seed a shard's pool with two content families from a per-shard RNG
/// stream, so shard `i` of a partitioned device has the same resident
/// content as a standalone device built with `seed_pool(mc, 100 + i)`.
fn seed_pool(mc: &mut MemoryController, stream: u64) {
    let mut rng = StdRng::seed_from_u64(stream);
    for i in 0..mc.num_segments() {
        let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
        let content: Vec<u8> = (0..SEG_BYTES)
            .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
            .collect();
        mc.seed(LogicalSegment(i), &content).unwrap();
    }
}

fn sharded(num_shards: usize, total_segments: usize) -> ShardedEngine {
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(SEG_BYTES)
        .num_segments(total_segments)
        .build()
        .unwrap();
    let controllers: Vec<MemoryController> = partition_controllers(&dev_cfg, num_shards)
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(i, (_, mut mc))| {
            seed_pool(&mut mc, 100 + i as u64);
            mc
        })
        .collect();
    ShardedEngine::train(controllers, &test_config()).unwrap()
}

/// Two-family values keyed by parity, so placement always has a close
/// cluster and neither cluster drains.
fn value_for(key: u64, tag: u8) -> Vec<u8> {
    let base = if key % 2 == 0 { 0x00u8 } else { 0xFF };
    let mut v = vec![base; 24];
    v[0] = tag;
    v
}

#[test]
fn concurrent_disjoint_writers_read_their_own_writes() {
    let engine = sharded(4, 256);
    let threads: Vec<_> = (0..8u64)
        .map(|t| {
            let e = engine.clone();
            std::thread::spawn(move || {
                for i in 0..20u64 {
                    let key = t * 1000 + i;
                    e.put(key, &value_for(key, t as u8)).unwrap();
                    // Read-your-writes must hold per key regardless of
                    // which shard the key landed on.
                    assert_eq!(e.get(key).unwrap(), value_for(key, t as u8));
                    if i % 4 == 0 {
                        assert!(e.delete(key).unwrap());
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(engine.len(), 8 * 15);
    for t in 0..8u64 {
        for i in 0..20u64 {
            let key = t * 1000 + i;
            if i % 4 == 0 {
                assert!(engine.get(key).is_err());
            } else {
                assert_eq!(engine.get(key).unwrap(), value_for(key, t as u8));
            }
        }
    }
}

#[test]
fn concurrent_same_key_writes_stay_atomic() {
    // All threads hammer one key: every read must observe one of the
    // written values in full (the key's shard serialises the writes),
    // never a torn or stale-length value.
    let engine = sharded(4, 128);
    let key = 42u64;
    engine.put(key, &value_for(key, 0xEE)).unwrap();
    let threads: Vec<_> = (0..4u8)
        .map(|t| {
            let e = engine.clone();
            std::thread::spawn(move || {
                for _ in 0..15 {
                    e.put(key, &value_for(key, t)).unwrap();
                    let got = e.get(key).unwrap();
                    assert_eq!(got.len(), 24);
                    assert!(got[0] == 0xEE || got[0] < 4, "torn tag {}", got[0]);
                    assert!(got[1..].iter().all(|&b| b == 0x00), "torn body");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(engine.len(), 1);
    // Exactly one segment is held: updates recycled their predecessors.
    assert_eq!(engine.free_count(), 128 - 1);
}

#[test]
fn scan_merges_across_shards_in_key_order() {
    let engine = sharded(3, 192);
    let keys = [44u64, 2, 17, 90, 33, 8, 61, 25];
    for &k in &keys {
        engine.put(k, &value_for(k, 1)).unwrap();
    }
    let got: Vec<u64> = engine
        .scan(5, 70)
        .unwrap()
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    assert_eq!(got, vec![8, 17, 25, 33, 44, 61]);
}

#[test]
fn sharded_matches_shadow_map_under_mixed_ops() {
    let engine = sharded(4, 256);
    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(9);
    for op in 0..500 {
        let key = rng.gen_range(0..48u64);
        match rng.gen_range(0..10) {
            0..=5 => {
                let v = value_for(key, rng.gen());
                engine.put(key, &v).unwrap();
                shadow.insert(key, v);
            }
            6..=7 => match shadow.get(&key) {
                Some(v) => assert_eq!(&engine.get(key).unwrap(), v, "op {op}"),
                None => assert!(engine.get(key).is_err(), "op {op}"),
            },
            8 => {
                assert_eq!(
                    engine.delete(key).unwrap(),
                    shadow.remove(&key).is_some(),
                    "op {op}"
                );
            }
            _ => {
                let lo = key.saturating_sub(10);
                let got: Vec<u64> = engine
                    .scan(lo, key)
                    .unwrap()
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                let expect: Vec<u64> = shadow.range(lo..=key).map(|(&k, _)| k).collect();
                assert_eq!(got, expect, "op {op}");
            }
        }
    }
    assert_eq!(engine.len(), shadow.len());
}

/// Build the single-engine twin of shard 0 of `sharded(num_shards, total)`:
/// same pool content, same config and seed, so placements are
/// bit-identical as long as no background retraining fires.
fn shard0_twin(num_shards: usize, total_segments: usize) -> E2Engine {
    let ranges = e2nvm::sim::partition_segments(total_segments, num_shards).unwrap();
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(SEG_BYTES)
        .num_segments(ranges[0].len)
        .build()
        .unwrap();
    let mut mc = MemoryController::without_wear_leveling(e2nvm::sim::NvmDevice::new(dev_cfg));
    seed_pool(&mut mc, 100);
    let mut engine = E2Engine::new(mc, test_config()).unwrap();
    engine.train().unwrap();
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole aggregation property: for a write sequence whose
    /// keys all route to shard 0, the ShardedEngine's *merged* stats
    /// (device counters and prediction counts summed over all shards)
    /// equal a standalone engine's stats for the same sequence.
    #[test]
    fn merged_shard_stats_equal_single_engine_stats(
        ops in proptest::collection::vec((0u8..10, 0u64..12, any::<u8>()), 1..36),
    ) {
        const SHARDS: usize = 4;
        const SEGMENTS: usize = 128;
        let sharded = sharded(SHARDS, SEGMENTS);
        let mut single = shard0_twin(SHARDS, SEGMENTS);

        // Map each abstract key to a concrete key that routes to shard 0
        // (probing is deterministic, so both sides see the same keys).
        let key_on_shard0 = |base: u64| -> u64 {
            (0..).map(|i| base + 12 * i).find(|&k| sharded.shard_for(k) == 0).unwrap()
        };

        for &(op, base, tag) in &ops {
            let key = key_on_shard0(base);
            if op < 7 {
                let v = value_for(key, tag);
                let a = sharded.put(key, &v).unwrap();
                let b = single.put(key, &v).unwrap();
                prop_assert_eq!(a.bits_flipped, b.bits_flipped);
                prop_assert_eq!(a.lines_written, b.lines_written);
            } else {
                prop_assert_eq!(sharded.delete(key).unwrap(), single.delete(key).unwrap());
            }
        }

        // Precondition for exactness: no background model swap happened
        // (retrain_min_free = 0 and two-family traffic keep every
        // cluster populated).
        prop_assert_eq!(sharded.model_swaps(), 0);

        prop_assert_eq!(sharded.device_stats(), single.device_stats().clone());
        prop_assert_eq!(
            sharded.prediction_stats().predictions,
            single.prediction_stats().predictions
        );
        prop_assert_eq!(sharded.len(), single.len());
        // Merged free count includes the untouched shards' pools.
        let other_free: usize = (1..SHARDS).map(|i| sharded.shard(i).free_count()).sum();
        prop_assert_eq!(sharded.free_count() - other_free, single.free_count());
    }
}
