//! The telemetry exactness property: the device counter families
//! registered by `attach_telemetry` are updated at the same accounting
//! chokepoints as [`DeviceStats`], so after *any* CRUD sequence the
//! counter totals equal the stats snapshot field-for-field (integer
//! fields) — on a single engine and, summed across per-shard label
//! sets, on a sharded engine against its merged stats.
#![cfg(feature = "telemetry")]

use e2nvm::prelude::*;
use e2nvm::sim::partition_controllers;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEG_BYTES: usize = 32;

fn test_config() -> E2Config {
    E2Config::builder()
        .fast(SEG_BYTES, 2)
        .pretrain_epochs(4)
        .joint_epochs(1)
        .retrain_min_free(0)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap()
}

fn seed_pool(mc: &mut MemoryController, stream: u64) {
    let mut rng = StdRng::seed_from_u64(stream);
    for i in 0..mc.num_segments() {
        let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
        let content: Vec<u8> = (0..SEG_BYTES)
            .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
            .collect();
        mc.seed(LogicalSegment(i), &content).unwrap();
    }
}

fn single_engine(segments: usize) -> E2Engine {
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(SEG_BYTES)
        .num_segments(segments)
        .build()
        .unwrap();
    let mut mc = MemoryController::without_wear_leveling(NvmDevice::new(dev_cfg));
    seed_pool(&mut mc, 7);
    let mut engine = E2Engine::new(mc, test_config()).unwrap();
    engine.train().unwrap();
    engine
}

fn sharded_engine(num_shards: usize, total_segments: usize) -> ShardedEngine {
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(SEG_BYTES)
        .num_segments(total_segments)
        .build()
        .unwrap();
    let controllers: Vec<MemoryController> = partition_controllers(&dev_cfg, num_shards)
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(i, (_, mut mc))| {
            seed_pool(&mut mc, 100 + i as u64);
            mc
        })
        .collect();
    ShardedEngine::train(controllers, &test_config()).unwrap()
}

fn value_for(key: u64, tag: u8) -> Vec<u8> {
    let base = if key % 2 == 0 { 0x00u8 } else { 0xFF };
    let mut v = vec![base; 24];
    v[0] = tag;
    v
}

/// Assert every integer `DeviceStats` field equals its counter family's
/// total on `registry` (summed over all label sets).
fn assert_counters_match(
    registry: &TelemetryRegistry,
    stats: &DeviceStats,
) -> Result<(), TestCaseError> {
    let fields: [(&str, u64); 10] = [
        ("e2nvm_device_writes_total", stats.writes),
        ("e2nvm_device_reads_total", stats.reads),
        ("e2nvm_device_swaps_total", stats.swaps),
        ("e2nvm_device_lines_written_total", stats.lines_written),
        ("e2nvm_device_lines_skipped_total", stats.lines_skipped),
        ("e2nvm_device_bits_flipped_total", stats.bits_flipped),
        ("e2nvm_device_bits_set_total", stats.bits_set),
        ("e2nvm_device_bits_reset_total", stats.bits_reset),
        ("e2nvm_device_bits_programmed_total", stats.bits_programmed),
        ("e2nvm_device_bits_requested_total", stats.bits_requested),
    ];
    for (name, expect) in fields {
        prop_assert_eq!(registry.counter_total(name), expect, "family {}", name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn single_engine_counters_equal_device_stats(
        ops in proptest::collection::vec((0u8..10, 0u64..24, any::<u8>()), 1..48),
    ) {
        let mut engine = single_engine(96);
        let registry = TelemetryRegistry::new();
        engine.attach_telemetry(&registry, 0);
        for &(op, key, tag) in &ops {
            match op {
                0..=6 => { let _ = engine.put(key, &value_for(key, tag)); }
                7..=8 => { let _ = engine.get(key); }
                _ => { let _ = engine.delete(key); }
            }
        }
        let stats = engine.device_stats().clone();
        prop_assert!(stats.writes > 0);
        assert_counters_match(&registry, &stats)?;
    }

    #[test]
    fn sharded_engine_counters_equal_merged_stats(
        ops in proptest::collection::vec((0u8..10, 0u64..48, any::<u8>()), 1..64),
    ) {
        let engine = sharded_engine(4, 192);
        let registry = TelemetryRegistry::new();
        engine.attach_telemetry(&registry);
        for &(op, key, tag) in &ops {
            match op {
                0..=6 => { let _ = engine.put(key, &value_for(key, tag)); }
                7..=8 => { let _ = engine.get(key); }
                _ => { let _ = engine.delete(key); }
            }
        }
        // Merged stats across all shards must equal the label-summed
        // counter families exactly.
        let stats = engine.device_stats();
        prop_assert!(stats.writes > 0);
        assert_counters_match(&registry, &stats)?;
    }
}

#[test]
fn counters_survive_stats_reset() {
    // Telemetry counters are monotonic: resetting the device stats must
    // not zero them — the two agree only while no reset intervenes.
    let mut engine = single_engine(64);
    let registry = TelemetryRegistry::new();
    engine.attach_telemetry(&registry, 0);
    engine.put(1, &value_for(1, 9)).unwrap();
    let writes_before = registry.counter_total("e2nvm_device_writes_total");
    assert!(writes_before > 0);
    engine.reset_device_stats();
    assert_eq!(
        registry.counter_total("e2nvm_device_writes_total"),
        writes_before
    );
    assert_eq!(engine.device_stats().writes, 0);
}
