//! Cross-crate integration tests: the full E2-NVM stack (device →
//! controller → engine) against workload generators, verifying the
//! paper's core behavioural claims end to end.

use e2nvm::core::{E2Config, E2Engine, E2Error, PaddingType};
use e2nvm::sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use e2nvm::workloads::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_over(kind: DatasetKind, segment_bytes: usize, segments: usize, k: usize) -> E2Engine {
    let mut rng = StdRng::seed_from_u64(0x1E57);
    let contents = kind.generate_sized(segments, segment_bytes, &mut rng);
    let device = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(segment_bytes)
            .num_segments(segments)
            .build()
            .unwrap(),
    );
    let mut controller = MemoryController::without_wear_leveling(device);
    for (i, c) in contents.iter().enumerate() {
        controller.seed(LogicalSegment(i), c).unwrap();
    }
    let cfg = E2Config::builder()
        .fast(segment_bytes, k)
        .latent_dim(8)
        .hidden(vec![64])
        .pretrain_epochs(20)
        .joint_epochs(5)
        .lr(3e-3)
        .beta(0.1)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap();
    let mut engine = E2Engine::new(controller, cfg).unwrap();
    engine.train().unwrap();
    engine
}

/// The headline claim: on clusterable content, trained placement flips
/// far fewer bits than round-robin placement of the same stream.
#[test]
fn placement_beats_round_robin_on_clusterable_data() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let segment_bytes = 64;
    let segments = 128;
    let incoming = DatasetKind::MnistLike.generate_sized(192, segment_bytes, &mut rng);

    // E2 placement.
    let mut engine = engine_over(DatasetKind::MnistLike, segment_bytes, segments, 8);
    engine.reset_device_stats();
    let mut placed = std::collections::VecDeque::new();
    for v in &incoming {
        if placed.len() >= segments / 2 {
            engine.recycle_segment(placed.pop_front().unwrap()).unwrap();
        }
        let (seg, _) = engine.place_value(v).unwrap();
        placed.push_back(seg);
    }
    let smart_flips = engine.device_stats().bits_flipped;

    // Round-robin over an identically seeded device.
    let mut rng2 = StdRng::seed_from_u64(0x1E57);
    let contents = DatasetKind::MnistLike.generate_sized(segments, segment_bytes, &mut rng2);
    let device = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(segment_bytes)
            .num_segments(segments)
            .build()
            .unwrap(),
    );
    let mut controller = MemoryController::without_wear_leveling(device);
    for (i, c) in contents.iter().enumerate() {
        controller.seed(LogicalSegment(i), c).unwrap();
    }
    for (i, v) in incoming.iter().enumerate() {
        controller
            .write_at(LogicalSegment(i % segments), 0, v)
            .unwrap();
    }
    let naive_flips = controller.stats().bits_flipped;

    // Round-robin gets accidental matches (same-class frames recur at
    // the same pool position), so the honest bar is ~1.5-2x here.
    assert!(
        smart_flips * 3 < naive_flips * 2,
        "expected ≥1.5x reduction: e2={smart_flips} naive={naive_flips}"
    );
}

/// GET returns exactly what PUT stored, across updates and deletes,
/// while placement churns segments underneath.
#[test]
fn kv_semantics_survive_churn() {
    let mut engine = engine_over(DatasetKind::AmazonAccess, 64, 96, 4);
    let mut shadow = std::collections::HashMap::new();
    let mut rng = StdRng::seed_from_u64(33);
    for round in 0u64..300 {
        let key = round % 40;
        match round % 5 {
            0..=2 => {
                let value = DatasetKind::AmazonAccess
                    .generate_sized(1, 48, &mut rng)
                    .pop()
                    .unwrap();
                engine.put(key, &value).unwrap();
                shadow.insert(key, value);
            }
            3 => {
                let deleted = engine.delete(key).unwrap();
                assert_eq!(deleted, shadow.remove(&key).is_some(), "round {round}");
            }
            _ => match shadow.get(&key) {
                Some(expect) => assert_eq!(&engine.get(key).unwrap(), expect, "round {round}"),
                None => assert_eq!(engine.get(key), Err(E2Error::KeyNotFound(key))),
            },
        }
    }
    // Scan agrees with the shadow.
    let scanned = engine.scan(..).unwrap();
    assert_eq!(scanned.len(), shadow.len());
    for (k, v) in scanned {
        assert_eq!(shadow.get(&k), Some(&v));
    }
}

/// Retraining under a shifted distribution restores placement quality
/// (the paper's Figure 17 scenario V).
#[test]
fn retraining_adapts_to_new_distribution() {
    let segment_bytes = 64;
    let segments = 128;
    let mut engine = engine_over(DatasetKind::MnistLike, segment_bytes, segments, 6);
    let mut rng = StdRng::seed_from_u64(0xAD);

    let run_stream = |engine: &mut E2Engine, items: &[Vec<u8>]| -> f64 {
        engine.reset_device_stats();
        let mut placed = std::collections::VecDeque::new();
        for v in items {
            if placed.len() >= segments / 2 {
                engine.recycle_segment(placed.pop_front().unwrap()).unwrap();
            }
            let (seg, _) = engine.place_value(v).unwrap();
            placed.push_back(seg);
        }
        let flips = engine.device_stats().flips_per_write();
        // Return everything so the next phase starts clean.
        for seg in placed {
            engine.recycle_segment(seg).unwrap();
        }
        flips
    };

    // Shift to an unseen family with different geometry.
    let fashion = DatasetKind::FashionLike.generate_sized(256, segment_bytes, &mut rng);
    let stale = run_stream(&mut engine, &fashion[..128]);
    // Retrain on current (now fashion-heavy) content and re-measure.
    engine.train().unwrap();
    let fresh = run_stream(&mut engine, &fashion[128..]);
    assert!(
        fresh <= stale * 1.05,
        "retraining should not hurt: stale={stale:.1} fresh={fresh:.1}"
    );
}

/// The background retrainer produces a model the engine can install
/// without disturbing stored data.
#[test]
fn background_retrain_roundtrip() {
    use e2nvm::core::BackgroundRetrainer;
    let mut engine = engine_over(DatasetKind::PubMed, 64, 96, 4);
    engine.put(7, b"persistent value").unwrap();

    let mut bg = BackgroundRetrainer::spawn();
    let snapshot = engine.training_snapshot();
    assert!(bg.submit(engine.config(), snapshot, 99));
    let model = bg.wait().expect("trained model");
    engine.install_model_now(model);
    assert_eq!(engine.get(7).unwrap(), b"persistent value");
    // New placements still work after the swap.
    engine.put(8, b"another").unwrap();
    assert_eq!(engine.get(8).unwrap(), b"another");
}

/// Wear leveling underneath the engine does not break KV semantics.
#[test]
fn engine_over_wear_leveled_controller() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let segment_bytes = 64;
    let segments = 64;
    let contents = DatasetKind::RoadNetwork.generate_sized(segments, segment_bytes, &mut rng);
    let device = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(segment_bytes)
            .num_segments(segments)
            .build()
            .unwrap(),
    );
    let mut controller = MemoryController::with_random_swap(device, 7, 0xE2);
    for (i, c) in contents.iter().enumerate() {
        controller.seed(LogicalSegment(i), c).unwrap();
    }
    let cfg = E2Config::builder()
        .fast(segment_bytes, 3)
        .pretrain_epochs(6)
        .joint_epochs(1)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap();
    let mut engine = E2Engine::new(controller, cfg).unwrap();
    engine.train().unwrap();
    for key in 0..32u64 {
        engine.put(key, &key.to_le_bytes()).unwrap();
    }
    for key in 0..32u64 {
        assert_eq!(engine.get(key).unwrap(), key.to_le_bytes().to_vec());
    }
    assert!(engine.device_stats().swaps > 0, "wear leveling never fired");
}
