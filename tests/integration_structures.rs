//! Cross-crate integration: every NVM index structure driven by the
//! YCSB generator, bare and plugged into E2-NVM, through the umbrella
//! crate's public API.

use e2nvm::core::{E2Config, E2Engine, PaddingType};
use e2nvm::kvstore::{
    BPlusTree, DirectNodeStore, E2NodeStore, FpTree, NoveLsm, NvmKvStore, PathHashing, WiscKey,
};
use e2nvm::sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use e2nvm::workloads::{DatasetKind, Operation, Ycsb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEGMENT: usize = 128;
const SEGMENTS: usize = 256;
const RECORDS: u64 = 48;

fn device() -> NvmDevice {
    NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(SEGMENT)
            .num_segments(SEGMENTS)
            .build()
            .unwrap(),
    )
}

fn direct_store() -> DirectNodeStore {
    DirectNodeStore::new(MemoryController::without_wear_leveling(device()))
}

fn e2_store() -> E2NodeStore {
    let mut controller = MemoryController::without_wear_leveling(device());
    let mut rng = StdRng::seed_from_u64(41);
    let residents = DatasetKind::MnistLike.generate_sized(SEGMENTS, SEGMENT, &mut rng);
    for (i, r) in residents.iter().enumerate() {
        controller.seed(LogicalSegment(i), r).unwrap();
    }
    let cfg = E2Config::builder()
        .fast(SEGMENT, 4)
        .pretrain_epochs(5)
        .joint_epochs(1)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap();
    let mut engine = E2Engine::new(controller, cfg).unwrap();
    engine.train().unwrap();
    E2NodeStore::new(engine)
}

/// Run a YCSB-A-shaped keyed workload against a store and check every
/// read against a shadow map.
fn drive_ycsb(store: &mut dyn NvmKvStore, seed: u64) {
    let mut workload = Ycsb::a(RECORDS, 24, seed);
    let mut shadow = std::collections::HashMap::new();
    // Load phase.
    let keys: Vec<u64> = workload.load_keys().collect();
    let mut version = 0u32;
    for &key in &keys {
        let value = workload.value_for(key, version);
        store.put(key, &value).unwrap();
        shadow.insert(key, value);
    }
    // Run phase.
    for op in workload.take_ops(300) {
        match op {
            Operation::Read(key) => {
                assert_eq!(
                    store.get(key).unwrap().as_ref(),
                    shadow.get(&key),
                    "{}: read {key}",
                    store.name()
                );
            }
            Operation::Update(key, _) => {
                version += 1;
                let value = workload.value_for(key, version);
                store.put(key, &value).unwrap();
                shadow.insert(key, value);
            }
            _ => unreachable!("workload A is read/update only"),
        }
    }
    assert!(store.stats().bits_flipped > 0);
}

#[test]
fn all_structures_survive_ycsb_direct() {
    let mut stores: Vec<Box<dyn NvmKvStore>> = vec![
        Box::new(BPlusTree::new(direct_store())),
        Box::new(FpTree::new(direct_store(), 24)),
        Box::new(PathHashing::new(direct_store(), 256, 4, 24).unwrap()),
        Box::new(WiscKey::new(direct_store())),
        Box::new(NoveLsm::new(direct_store(), 4)),
    ];
    for (i, store) in stores.iter_mut().enumerate() {
        drive_ycsb(store.as_mut(), 100 + i as u64);
    }
}

#[test]
fn all_structures_survive_ycsb_plugged_into_e2() {
    let mut stores: Vec<Box<dyn NvmKvStore>> = vec![
        Box::new(BPlusTree::new(e2_store())),
        Box::new(FpTree::new(e2_store(), 24)),
        Box::new(PathHashing::new(e2_store(), 128, 3, 24).unwrap()),
        Box::new(WiscKey::new(e2_store())),
        Box::new(NoveLsm::new(e2_store(), 4)),
    ];
    for (i, store) in stores.iter_mut().enumerate() {
        drive_ycsb(store.as_mut(), 200 + i as u64);
        // Maintenance (model retraining) keeps the store consistent.
        store.maintenance();
        let key = e2nvm::workloads::scramble(3);
        let probe: Vec<u8> = (0..24).map(|b| b as u8).collect();
        store.put(key, &probe).unwrap();
        assert_eq!(store.get(key).unwrap().unwrap(), probe);
    }
}

/// Mixed dataset values flow through the batched writer and the shared
/// engine without loss.
#[test]
fn batched_writer_with_dataset_values() {
    use e2nvm::core::BatchedWriter;
    let mut controller = MemoryController::without_wear_leveling(device());
    let mut rng = StdRng::seed_from_u64(5);
    let residents = DatasetKind::PubMed.generate_sized(SEGMENTS, SEGMENT, &mut rng);
    for (i, r) in residents.iter().enumerate() {
        controller.seed(LogicalSegment(i), r).unwrap();
    }
    let cfg = E2Config::builder()
        .fast(SEGMENT, 4)
        .pretrain_epochs(5)
        .joint_epochs(1)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap();
    let mut engine = E2Engine::new(controller, cfg).unwrap();
    engine.train().unwrap();
    let mut writer = BatchedWriter::new(engine);

    let small_values: Vec<Vec<u8>> = (0..64)
        .map(|i| (0..20).map(|b| (i * 7 + b) as u8).collect())
        .collect();
    for (key, v) in small_values.iter().enumerate() {
        writer.put(key as u64, v).unwrap();
    }
    writer.flush().unwrap();
    for (key, v) in small_values.iter().enumerate() {
        assert_eq!(&writer.get(key as u64).unwrap(), v, "key {key}");
    }
    // ~64 values of 20 B in 128 B batches -> about 11 placements.
    let writes = writer.engine().device_stats().writes;
    assert!(writes <= 16, "batching ineffective: {writes} writes");
}

/// A store driven by values from each dataset generator round-trips.
#[test]
fn datasets_roundtrip_through_e2_kv() {
    use e2nvm::kvstore::E2KvStore;
    let mut controller = MemoryController::without_wear_leveling(device());
    let mut rng = StdRng::seed_from_u64(17);
    let residents = DatasetKind::CifarLike.generate_sized(SEGMENTS, SEGMENT, &mut rng);
    for (i, r) in residents.iter().enumerate() {
        controller.seed(LogicalSegment(i), r).unwrap();
    }
    let cfg = E2Config::builder()
        .fast(SEGMENT, 4)
        .pretrain_epochs(5)
        .joint_epochs(1)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap();
    let mut engine = E2Engine::new(controller, cfg).unwrap();
    engine.train().unwrap();
    let mut store = E2KvStore::new(engine);

    let mut key = 0u64;
    for kind in DatasetKind::ALL {
        let len = rng.gen_range(16..SEGMENT);
        for item in kind.generate_sized(4, len, &mut rng) {
            store.put(key, &item).unwrap();
            assert_eq!(store.get(key).unwrap().unwrap(), item, "{}", kind.name());
            key += 1;
        }
    }
    assert_eq!(store.len(), 7 * 4);
}
