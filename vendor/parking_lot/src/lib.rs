//! Offline drop-in subset of `parking_lot`: poison-free [`Mutex`] and
//! [`RwLock`] wrappers over `std::sync`. A poisoned std lock (a thread
//! panicked while holding it) is recovered transparently, matching
//! parking_lot's no-poisoning semantics.

/// Alias of the std guard — parking_lot guards expose the same `Deref`
/// surface, which is all the workspace uses.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let lock = Arc::new(Mutex::new(0u32));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *lock.lock() += 1;
        assert_eq!(*lock.lock(), 1);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let lock = RwLock::new(5u32);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 10);
        }
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }
}
