//! Offline drop-in subset of `criterion`: `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups
//! with `bench_with_input`, and `BenchmarkId`.
//!
//! Measurement is deliberately simple — a calibration pass sizes the
//! iteration count to a ~100 ms window, then the median of several
//! timed batches is reported as ns/iter on stdout. CLI behaviour
//! matches what `cargo bench` needs: `--test` runs every benchmark
//! body exactly once (the CI smoke mode), any bare argument filters
//! benchmarks by substring, and other criterion flags are ignored.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Identifies one benchmark inside a group, rendered as
/// `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    test_mode: bool,
    /// Where the measurement lands (printed by the caller).
    result_ns: &'a mut Option<f64>,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly and record its per-call latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            *self.result_ns = None;
            return;
        }
        // Calibrate: grow the batch until it costs >= 10 ms.
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= (1 << 30) {
                break;
            }
            batch *= 4;
        }
        // Measure: median of 5 batches.
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        *self.result_ns = Some(samples[samples.len() / 2]);
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Build from `cargo bench` CLI arguments: `--test` switches to
    /// run-once mode; the first bare argument is a name filter; other
    /// flags (criterion's full CLI) are accepted and ignored.
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') && c.filter.is_none() {
                c.filter = Some(arg);
            }
        }
        c
    }

    fn should_run(&self, name: &str) -> bool {
        match self.filter.as_deref() {
            None => true,
            Some(f) => name.contains(f),
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, mut body: F) {
        if !self.should_run(name) {
            return;
        }
        let mut result_ns = None;
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            result_ns: &mut result_ns,
        };
        body(&mut bencher);
        match result_ns {
            Some(ns) => println!("{name:<48} time: {ns:>12.1} ns/iter"),
            None => println!("{name:<48} ok (test mode)"),
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        self.run_one(name, body);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (`group_name/bench_name` reporting).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the stub's sample count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; the stub sizes its own
    /// measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark one case in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, body);
        self
    }

    /// Benchmark one case parameterised by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, |b| body(b, input));
        self
    }

    /// End the group (report flushing is immediate in the stub).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("demo_direct", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("demo_group");
        group.sample_size(10);
        group.bench_function("inline", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        demo(&mut c);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nothing-matches-this".into()),
        };
        // Must not execute any body; would be slow otherwise but still
        // correct — the assertion is that it completes.
        demo(&mut c);
    }
}
