//! Derive macros for the offline `serde` stub: emit empty marker-trait
//! impls. Implemented with hand-rolled token scanning (no `syn`/`quote`
//! — the build environment has no access to crates.io).

use proc_macro::{TokenStream, TokenTree};

/// Extract `(name, generic_params)` from a struct/enum/union item.
/// Only generic parameter *names* are recovered (lifetimes and type
/// idents, bounds stripped), which covers every derive site in this
/// workspace.
fn parse_item(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility / qualifiers until the
    // `struct` / `enum` / `union` keyword.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let s = ident.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => {
                        name = Some(n.to_string());
                        break;
                    }
                    other => panic!("serde_derive stub: expected type name, got {other:?}"),
                }
            }
        }
    }
    let name = name.expect("serde_derive stub: no struct/enum/union found");

    // Collect generic parameter names if a `<...>` list follows.
    let mut params = Vec::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        // Parameter names are the identifiers (or lifetimes) appearing at
        // depth 1 directly after `<` or `,`.
        let mut at_param_start = true;
        let mut pending_lifetime = false;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => at_param_start = true,
                    '\'' if depth == 1 && at_param_start => pending_lifetime = true,
                    ':' if depth == 1 => at_param_start = false,
                    _ => {}
                },
                TokenTree::Ident(ident) => {
                    if depth == 1 && at_param_start {
                        let prefix = if pending_lifetime { "'" } else { "" };
                        let s = ident.to_string();
                        if s != "const" {
                            params.push(format!("{prefix}{s}"));
                            at_param_start = false;
                        }
                    }
                    pending_lifetime = false;
                }
                _ => {}
            }
        }
    }
    (name, params)
}

fn impl_for(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let (name, params) = parse_item(input);
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push(lt.to_string());
    }
    impl_params.extend(params.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let code = format!(
        "#[automatically_derived] impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}"
    );
    code.parse()
        .expect("serde_derive stub: generated impl must parse")
}

/// Derive the `Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for(input, "::serde::Serialize", None)
}

/// Derive the `Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for(input, "::serde::Deserialize<'de>", Some("'de"))
}
