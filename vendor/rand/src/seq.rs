//! Slice helpers, mirroring `rand::seq`.

use crate::RngCore;

/// Uniform index in `0..ubound` for unsized generators.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    debug_assert!(ubound > 0);
    // 128-bit multiply-shift avoids modulo bias without rejection.
    ((rng.next_u64() as u128 * ubound as u128) >> 64) as usize
}

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }
}
