//! The [`Standard`] distribution over primitives and uniform range
//! sampling, mirroring `rand::distributions`.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The uniform "every representable value" distribution for integers and
/// `bool`, and the uniform unit interval `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                ((low as i128) + offset) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                ((low as i128) + offset) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let unit: $t = Standard.sample(rng);
                let v = low + (high - low) * unit;
                // Guard against rounding up to the open bound.
                if v >= high { low } else { v }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let unit: $t = Standard.sample(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range argument accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(low, high, rng)
    }
}
