//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses. The container building this repository has no access
//! to crates.io, so the workspace vendors the few external crates it
//! needs as small local implementations (see `vendor/README.md`).
//!
//! Coverage: [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! `gen`, `gen_range`, `gen_bool` and `fill`, the [`Standard`]
//! distribution for primitive types, and [`seq::SliceRandom::shuffle`].
//!
//! Streams differ from the real `rand` crate (different generator), but
//! every consumer in this workspace only relies on determinism-per-seed
//! and statistical quality, never on exact values.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types a slice can be filled with via [`Rng::fill`].
pub trait Fill {
    /// Fill `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [f32] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self {
            *v = Standard.sample(rng);
        }
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Fill a slice with random values.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let d = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..4000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f as f64;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1700..2300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
