//! The `any::<T>()` entry point.

use crate::strategy::AnyStrategy;
use rand::{Distribution, Standard};

/// A strategy producing arbitrary values of `T` (via the `Standard`
/// distribution of the vendored `rand`).
pub fn any<T>() -> AnyStrategy<T>
where
    Standard: Distribution<T>,
{
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}
