//! Test-runner configuration and RNG construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed (or rejected) test case, usable with `?` inside `proptest!`
/// bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// A hard failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }

    /// The stub does not resample; a rejection is reported like a
    /// failure so it cannot silently mask a broken generator.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// Body outcome of one sampled case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so that every
/// test explores a distinct but reproducible input stream.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    let mut seed = 0xE2_0B5E55_u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(seed)
}
