//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A length specification: an exact size or a half-open range, matching
/// proptest's `SizeRange` conversions.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "collection::vec: empty size range");
        Self {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element` and whose length
/// comes from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
