//! Offline drop-in subset of `proptest`: the `proptest!` macro,
//! `prop_assert*`, `prop_oneof!`, `Just`, `any`, range and collection
//! strategies, and `ProptestConfig`. Cases are sampled from a seeded
//! RNG (deterministic per test); failing inputs are reported via the
//! panic message but are **not shrunk** — acceptable for CI, where a
//! failure seed reproduces exactly.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Generate test functions that run their body over sampled inputs.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0usize..10, v in proptest::collection::vec(any::<u8>(), 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng = $crate::test_runner::deterministic_rng(stringify!($name));
            for __pt_case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __pt_rng);)+
                let __pt_result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    },
                ));
                match __pt_result {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => {
                        panic!(
                            "proptest stub: case {}/{} of `{}` failed: {}",
                            __pt_case + 1,
                            config.cases,
                            stringify!($name),
                            err,
                        );
                    }
                    Err(panic) => {
                        eprintln!(
                            "proptest stub: case {}/{} of `{}` failed",
                            __pt_case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
    )*};
}

/// Assert inside a proptest body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Reject a sampled case that does not meet a precondition. The stub
/// simply skips the case (no reject-budget accounting, no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 2usize..9, y in -4i32..=4, f in 0.25f64..0.75) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(any::<u8>(), 3..7),
            exact in crate::collection::vec(any::<bool>(), 5),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(exact.len(), 5);
        }

        #[test]
        fn oneof_and_just_and_map(
            c in prop_oneof![Just(1u8), Just(2), Just(3)],
            mapped in (0u32..5).prop_map(|v| v * 10),
        ) {
            prop_assert!((1..=3).contains(&c));
            prop_assert_eq!(mapped % 10, 0);
            prop_assert!(mapped <= 40);
        }

        #[test]
        fn tuples_sample_elementwise((a, b) in (0u8..4, 10u8..14), pair in (any::<bool>(), 0usize..2)) {
            prop_assert!(a < 4 && (10..14).contains(&b));
            let (_flag, idx) = pair;
            prop_assert!(idx < 2);
        }
    }
}
