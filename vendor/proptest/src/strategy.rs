//! Value-generation strategies. A [`Strategy`] here is simply a sampler
//! — the real proptest's shrinking machinery is intentionally absent.

use rand::rngs::StdRng;
use rand::{Distribution, Rng, Standard};
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Box a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(strat: S) -> BoxedStrategy<S::Value> {
    Box::new(strat)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice across boxed strategies (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Build from at least one arm.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof!: no arms");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::distributions::SampleUniform + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::distributions::SampleUniform + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Samples the full [`Standard`] distribution of `T` (`any::<T>()`).
pub struct AnyStrategy<T> {
    pub(crate) _marker: std::marker::PhantomData<T>,
}

impl<T> Strategy for AnyStrategy<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        Standard.sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}
