//! Offline drop-in subset of `crossbeam`: the [`channel`] module backed
//! by `std::sync::mpsc`. Only bounded channels are provided — that is
//! all the background-retraining path uses.

pub mod channel {
    //! Bounded MPSC channels with crossbeam-compatible names.

    pub use std::sync::mpsc::{RecvError, TryRecvError, TrySendError};

    /// Sending half of a bounded channel.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    /// Receiving half of a bounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// A channel holding at most `cap` in-flight messages (`cap == 0`
    /// gives a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TryRecvError};

    #[test]
    fn bounded_capacity_enforced() {
        let (tx, rx) = bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_err(), "second try_send must fail");
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(2).is_ok());
    }

    #[test]
    fn try_recv_signals_empty_and_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_round_trip() {
        let (tx, rx) = bounded::<u64>(1);
        let t = std::thread::spawn(move || {
            for i in 0..10u64 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u64> = (0..10).map(|_| rx.recv().unwrap()).collect();
        t.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }
}
