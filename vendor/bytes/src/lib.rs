//! Offline drop-in subset of the `bytes` crate: [`Bytes`], [`BytesMut`]
//! and the [`BufMut`] trait, enough for the batching layer. Cheap
//! zero-copy clones are preserved by backing [`Bytes`] with an `Arc`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(data),
        }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Take the full contents, leaving this buffer empty (its capacity
    /// is retained, matching `bytes::BytesMut::split`).
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Drop all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-oriented write access.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, byte: u8) {
        self.put_slice(&[byte]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_then_freeze_round_trips() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(b"hello");
        buf.put_u8(b'!');
        assert_eq!(&buf[..], b"hello!");
        let frozen = buf.split().freeze();
        assert_eq!(&frozen[..], b"hello!");
        assert!(buf.is_empty(), "split must leave the buffer empty");
        buf.put_slice(b"next");
        assert_eq!(&buf[..], b"next");
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }
}
