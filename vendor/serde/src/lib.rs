//! Offline drop-in subset of the `serde` facade. The workspace derives
//! `Serialize`/`Deserialize` on config and stats types so that a future
//! wire format can be plugged in, but nothing serializes through serde
//! yet (persistence uses hand-rolled formats in `e2nvm-sim::snapshot`
//! and `e2nvm-ml::persist`). The traits are therefore markers: deriving
//! them records intent and keeps call sites source-compatible with the
//! real crate.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    //! Deserialization-side re-exports.
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    //! Serialization-side re-exports.
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
