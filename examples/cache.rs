//! The hot-key read-through cache end to end: wrap a trained store
//! with [`CachedKvStore`], watch hits/misses/evictions in the
//! always-on counters, see coherent invalidation keep readers honest,
//! then put the same cache in front of a live server shared by two
//! connections.
//!
//! Design rationale: DESIGN.md §12. The wire protocol is untouched by
//! caching (PROTOCOL.md §6).
//!
//! ```text
//! cargo run --release --example cache
//! ```

use e2nvm::prelude::*;
use e2nvm::server::demo::demo_store;

fn main() {
    // A small trained 2-shard store (demo geometry). E2-NVM makes
    // writes the expensive, endurance-limited operation — reads are
    // where a DRAM tier pays off.
    println!("training 2 shard models...");
    let store = demo_store(2, 128, 64, 7);

    // A deliberately tiny cache so evictions actually happen in this
    // tour: ~1 KiB over 2 shards holds only a handful of values.
    let tiny = CacheConfig::builder()
        .capacity_bytes(1024)
        .shards(2)
        .build()
        .expect("valid cache config");
    let mut cached = CachedKvStore::new(store, tiny);

    // Read-through: first GET misses and fills, the second hits DRAM.
    cached.put(1, b"hot value").expect("put");
    cached.get(1).expect("get");
    cached.get(1).expect("get");
    let s = cached.cache_stats();
    println!("after 2 reads: {} hit / {} miss", s.hits, s.misses);
    assert_eq!((s.hits, s.misses), (1, 1));

    // Coherence: an acked overwrite is never served stale. The
    // invalidation happens before put() returns.
    cached.put(1, b"new value").expect("overwrite");
    assert_eq!(
        cached.get(1).expect("get").as_deref(),
        Some(&b"new value"[..])
    );
    println!(
        "overwrite invalidated the cached entry ({} invalidations)",
        cached.cache_stats().invalidations
    );

    // Bounded: hammer more keys than the budget holds and the CLOCK
    // hand evicts cold entries instead of growing.
    for key in 0..48u64 {
        cached.put(key, &key.to_le_bytes()).expect("put");
        cached.get(key).expect("get");
    }
    let s = cached.cache_stats();
    println!(
        "after 48 one-touch keys: {} evictions, occupancy stayed within budget",
        s.evictions
    );
    assert!(s.evictions > 0);

    // The same cache behind the server: one knob on the validated
    // config builder; every connection shares it, and the protocol
    // doesn't change.
    let registry = TelemetryRegistry::new();
    let mut store = demo_store(2, 64, 64, 7);
    store.attach_telemetry(&registry);
    let config = ServerConfig::builder()
        .cache(
            CacheConfig::builder()
                .capacity_bytes(8 << 20)
                .build()
                .expect("valid cache config"),
        )
        .build()
        .expect("valid server config");
    let handle = Server::new(store, config)
        .with_telemetry(&registry)
        .start()
        .expect("bind an ephemeral loopback port");
    println!("cache-fronted server on {}", handle.local_addr());

    let mut writer = Client::connect(handle.local_addr()).expect("connect");
    let mut reader = Client::connect(handle.local_addr()).expect("connect");
    writer.put(7, b"v1").expect("put");
    assert_eq!(reader.get(7).expect("get").as_deref(), Some(&b"v1"[..]));
    assert_eq!(reader.get(7).expect("get").as_deref(), Some(&b"v1"[..])); // hit
    writer.put(7, b"v2").expect("overwrite");
    assert_eq!(
        reader.get(7).expect("get").as_deref(),
        Some(&b"v2"[..]),
        "cross-connection invalidation is synchronous with the PUT ack"
    );
    println!("cross-connection reads never went stale");

    // With --features telemetry the shared registry exposes the
    // e2nvm_cache_* series through the METRICS frame.
    let metrics = reader.metrics().expect("metrics");
    if cfg!(feature = "telemetry") {
        let hits = metrics
            .lines()
            .find(|l| l.starts_with("e2nvm_cache_hits_total"))
            .expect("cache series registered");
        println!("over the wire: {hits}");
    } else {
        println!("(build with --features telemetry to scrape e2nvm_cache_* series)");
    }

    writer.shutdown_server().expect("shutdown ack");
    let served = handle.join();
    println!("clean shutdown after {served} connections");
}
