//! A service lifecycle: train once, serve concurrently from multiple
//! threads with lazy background retraining, then "restart" — persisting
//! the trained model and the device image and resuming without
//! retraining.
//!
//! ```text
//! cargo run --release --example persistent_service
//! ```

use e2nvm::core::{E2Config, E2Engine, SharedEngine};
use e2nvm::sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use e2nvm::workloads::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEGMENT: usize = 64;
const SEGMENTS: usize = 192;

fn main() {
    let tmp = std::env::temp_dir();
    let model_path = tmp.join("e2nvm_service_model.bin");
    let image_path = tmp.join("e2nvm_service_device.bin");

    // ---------- first boot: train and serve ----------
    let mut rng = StdRng::seed_from_u64(2026);
    let residents = DatasetKind::AmazonAccess.generate_sized(SEGMENTS, SEGMENT, &mut rng);
    let device = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(SEGMENT)
            .num_segments(SEGMENTS)
            .build()
            .expect("device config"),
    );
    let mut controller = MemoryController::without_wear_leveling(device);
    for (i, r) in residents.iter().enumerate() {
        controller.seed(LogicalSegment(i), r).expect("seed");
    }
    let cfg = E2Config::builder()
        .fast(SEGMENT, 6)
        .pretrain_epochs(12)
        .joint_epochs(3)
        .retrain_min_free(2)
        .build()
        .expect("config");
    let mut engine = E2Engine::new(controller, cfg.clone()).expect("engine");
    println!("boot #1: training the placement model...");
    engine.train().expect("train");

    let shared = SharedEngine::new(engine);
    println!("serving from 4 threads...");
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let s = shared.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let values = DatasetKind::AmazonAccess.generate_sized(20, 48, &mut rng);
                for (i, v) in values.iter().enumerate() {
                    let key = t * 1000 + i as u64;
                    s.put(key, v).expect("put");
                    assert_eq!(&s.get(key).expect("get"), v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread");
    }
    shared.finish_retraining();
    let stats = shared.device_stats();
    println!(
        "  {} keys stored, {:.1} flips/write, {} background model swaps",
        shared.len(),
        stats.flips_per_write(),
        shared.model_swaps()
    );

    // ---------- shutdown: persist model + device image ----------
    // The `e2nvm::persist` facade replaces the deprecated per-crate
    // helpers (`E2Model::save`, `sim::snapshot::save`).
    shared.with_engine(|engine| {
        e2nvm::persist::save_model(engine.model().expect("trained"), &model_path)
            .expect("save model");
        e2nvm::persist::save_device(engine.controller().device(), &image_path).expect("save image");
    });
    let model_bytes = std::fs::metadata(&model_path).expect("meta").len();
    let image_bytes = std::fs::metadata(&image_path).expect("meta").len();
    println!("\npersisted: model {model_bytes} B, device image {image_bytes} B");
    drop(shared);

    // ---------- second boot: resume without retraining ----------
    println!("\nboot #2: loading device image + model (no retraining)...");
    let device = e2nvm::persist::load_device(&image_path).expect("load image");
    let controller = MemoryController::without_wear_leveling(device);
    let mut engine = E2Engine::new(controller, cfg).expect("engine");
    let model = e2nvm::persist::load_model(&model_path).expect("load model");
    engine.install_model_now(model);
    println!(
        "  resumed: k = {}, {} free segments classified",
        engine.model().expect("installed").k(),
        engine.free_count()
    );
    // The resumed engine places content-aware immediately.
    let mut rng = StdRng::seed_from_u64(77);
    let probe = DatasetKind::AmazonAccess
        .generate_sized(1, 48, &mut rng)
        .remove(0);
    let (seg, report) = engine.place_value(&probe).expect("place");
    println!(
        "  first write after resume: {} -> {} bit flips (no training paid)",
        seg, report.bits_flipped
    );

    std::fs::remove_file(&model_path).ok();
    std::fs::remove_file(&image_path).ok();
}
