//! Telemetry tour: attach a registry to a sharded KV store, run a small
//! workload, and render the metrics as Prometheus text exposition and a
//! JSON snapshot (plus the device wear heatmap).
//!
//! ```text
//! cargo run --release --example telemetry
//! cargo run --release --no-default-features --example telemetry   # no-op build
//! ```
//!
//! The CI smoke step runs this example and checks the exposition for
//! the expected metric families, so the printed sections double as the
//! format contract.

use e2nvm::prelude::*;
use e2nvm::sim::partition_controllers;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEG_BYTES: usize = 64;

fn main() {
    // A 4-shard store over a 256-segment pool, seeded with two content
    // families so the placement model has structure to learn.
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(SEG_BYTES)
        .num_segments(256)
        .build()
        .expect("device config");
    let mut rng = StdRng::seed_from_u64(11);
    let controllers: Vec<MemoryController> = partition_controllers(&dev_cfg, 4)
        .expect("partition")
        .into_iter()
        .map(|(_, mut mc)| {
            for i in 0..mc.num_segments() {
                let base: u8 = if i % 2 == 0 { 0x00 } else { 0xFF };
                let content: Vec<u8> = (0..SEG_BYTES)
                    .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                    .collect();
                mc.seed(LogicalSegment(i), &content).expect("seed");
            }
            mc
        })
        .collect();
    let cfg = E2Config::builder()
        .fast(SEG_BYTES, 2)
        .pretrain_epochs(6)
        .joint_epochs(2)
        .padding_type(PaddingType::Zero)
        .build()
        .expect("config");
    let engine = ShardedEngine::train(controllers, &cfg).expect("train");
    let mut store = ShardedE2KvStore::new(engine);

    // One registry observes everything: KV ops, per-shard engine
    // placement, and per-shard device accounting.
    let registry = TelemetryRegistry::new();
    store.attach_telemetry(&registry);
    println!(
        "telemetry compiled {}",
        if e2nvm::telemetry::is_enabled() {
            "IN (live metrics below)"
        } else {
            "OUT (all renders are fixed stubs)"
        }
    );

    // A small mixed workload.
    for i in 0..120u64 {
        let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
        let mut v = vec![base; 48];
        v[0] = i as u8;
        store.put(i % 40, &v).expect("put");
        if i % 3 == 0 {
            let _ = store.get(i % 40).expect("get");
        }
        if i % 10 == 9 {
            let _ = store.delete(i % 40).expect("delete");
        }
    }
    let _ = store.scan(0, 20).expect("scan");
    store.maintenance();

    println!("\n=== Prometheus exposition ===");
    print!("{}", registry.render_prometheus());

    println!("\n=== JSON snapshot ===");
    println!("{}", registry.snapshot_json());

    // The trait-level hook: harness code that only sees `dyn NvmKvStore`
    // can still reach the registry.
    let as_trait: &dyn NvmKvStore = &store;
    println!(
        "\ntrait hook sees a registry: {}",
        as_trait.telemetry().is_some()
    );
}
