//! Sharded serving in a few lines: partition a device into four shards,
//! train one placement engine per shard, and serve hash-routed traffic
//! from multiple threads.
//!
//! ```text
//! cargo run --release --example sharded
//! ```

use e2nvm::core::{E2Config, PaddingType, ShardedEngine};
use e2nvm::sim::{partition_controllers, DeviceConfig, LogicalSegment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    const SHARDS: usize = 4;
    const SEG_BYTES: usize = 64;

    // One global device config, partitioned into disjoint segment
    // ranges; each shard gets its own controller and device accounting.
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(SEG_BYTES)
        .num_segments(256)
        .build()
        .expect("valid device config");

    // Seed every shard's pool with two content families so the models
    // have structure to learn.
    let mut rng = StdRng::seed_from_u64(7);
    let controllers: Vec<_> = partition_controllers(&dev_cfg, SHARDS)
        .expect("partition")
        .into_iter()
        .map(|(range, mut mc)| {
            for i in 0..mc.num_segments() {
                let base: u8 = if i % 2 == 0 { 0x11 } else { 0xEE };
                let content: Vec<u8> = (0..SEG_BYTES)
                    .map(|_| if rng.gen::<f32>() < 0.06 { !base } else { base })
                    .collect();
                mc.seed(LogicalSegment(i), &content).expect("seed");
            }
            println!(
                "shard over global segments {}..{} ready",
                range.start,
                range.end()
            );
            mc
        })
        .collect();

    // Train one engine per shard (each with its own VAE+K-means model,
    // address pool, and background retrainer).
    let cfg = E2Config::builder()
        .fast(SEG_BYTES, 2)
        .pretrain_epochs(4)
        .joint_epochs(1)
        .padding_type(PaddingType::Zero)
        .build()
        .expect("config");
    println!("training {SHARDS} shard models...");
    let engine = ShardedEngine::train(controllers, &cfg).expect("train");

    // Serve from four threads; keys route to shards by hash, so
    // operations on different shards share no locks.
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                for i in 0..32u64 {
                    let key = t * 1000 + i;
                    engine.put(key, &key.to_le_bytes()).expect("put");
                    assert_eq!(engine.get(key).expect("get"), key.to_le_bytes());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("worker");
    }

    let stats = engine.device_stats();
    println!(
        "\n{} keys across {} shards; {} writes, {:.1} flips/write, {:.1} pJ/write",
        engine.len(),
        engine.num_shards(),
        stats.writes,
        stats.flips_per_write(),
        stats.energy_per_write_pj(),
    );
    let sample = engine.scan(0, 5).expect("scan");
    println!(
        "scan [0,5] -> keys {:?}",
        sample.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );
}
