//! Fault injection and graceful degradation, end to end: a sharded KV
//! store over a device with seeded Weibull endurance limits and
//! transient write failures. Segments wear out mid-workload and are
//! permanently retired; capacity shrinks, but no stored value is ever
//! lost — and when the pool finally runs dry the store reports
//! degraded mode instead of corrupting anything.
//!
//! ```text
//! cargo run --release --example faults
//! ```

use e2nvm::core::{E2Config, PaddingType, ShardedEngine};
use e2nvm::kvstore::{NvmKvStore, ShardedE2KvStore, StoreError};
use e2nvm::sim::{partition_controllers, DeviceConfig, FaultConfig, LogicalSegment};
use e2nvm::telemetry::{Event, TelemetryRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn main() {
    const SHARDS: usize = 2;
    const SEG_BYTES: usize = 64;
    const SEGMENTS: usize = 64;

    // A device whose segments carry seeded per-segment endurance limits
    // (Weibull around 6000 programmed bits) and a 5% transient write
    // failure rate. Same seed -> same limits, every run.
    let dev_cfg = DeviceConfig::builder()
        .segment_bytes(SEG_BYTES)
        .num_segments(SEGMENTS)
        .fault(FaultConfig {
            seed: 0xFA_17,
            endurance_bits: 6_000,
            endurance_shape: 3.0,
            transient_rate: 0.05,
        })
        .build()
        .expect("valid device config");

    let mut rng = StdRng::seed_from_u64(11);
    let controllers: Vec<_> = partition_controllers(&dev_cfg, SHARDS)
        .expect("partition")
        .into_iter()
        .map(|(_, mut mc)| {
            for i in 0..mc.num_segments() {
                let base: u8 = if i % 2 == 0 { 0x11 } else { 0xEE };
                let content: Vec<u8> = (0..SEG_BYTES)
                    .map(|_| if rng.gen::<f32>() < 0.06 { !base } else { base })
                    .collect();
                mc.seed(LogicalSegment(i), &content).expect("seed");
            }
            mc
        })
        .collect();

    let cfg = E2Config::builder()
        .fast(SEG_BYTES, 2)
        .pretrain_epochs(4)
        .joint_epochs(1)
        .padding_type(PaddingType::Zero)
        .build()
        .expect("config");
    println!("training {SHARDS} shard models over a fault-injecting device...");
    let mut store = ShardedE2KvStore::new(ShardedEngine::train(controllers, &cfg).expect("train"));
    let registry = TelemetryRegistry::new();
    store.attach_telemetry(&registry);

    // Phase 1: serve a write-heavy workload while segments die under
    // it. Every value is mirrored into a shadow map and read back.
    println!("\n-- phase 1: workload under wear --");
    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut degraded: Option<StoreError> = None;
    let mut writes = 0usize;
    loop {
        let key = rng.gen_range(0..24u64);
        let value: Vec<u8> = (0..60).map(|_| rng.gen()).collect();
        match store.put(key, &value) {
            Ok(()) => {
                shadow.insert(key, value);
                writes += 1;
            }
            Err(e) => {
                // Phase 2: the pool ran dry — degraded mode.
                degraded = Some(e);
                break;
            }
        }
        if writes % 400 == 0 {
            println!(
                "  {writes:>5} writes served, {} of {SEGMENTS} segments retired",
                store.retired_count()
            );
        }
        if writes >= 20_000 {
            break;
        }
    }

    println!("\n-- phase 2: degraded mode --");
    match &degraded {
        Some(e @ StoreError::Degraded { retired }) => {
            println!("  after {writes} writes: {e}");
            assert!(*retired >= 1, "degraded mode implies retirements");
        }
        Some(e) => panic!("unexpected error: {e}"),
        None => println!("  write budget exhausted before depletion (endurance too generous)"),
    }

    // Phase 3: audit. Every value the store accepted must read back
    // byte-for-byte, retirements notwithstanding.
    println!("\n-- phase 3: audit --");
    for (key, value) in &shadow {
        let got = store.get(*key).expect("get in degraded mode still works");
        assert_eq!(got.as_deref(), Some(value.as_slice()), "key {key} lost");
    }
    println!(
        "  {} surviving keys intact after {} retirements; zero lost values",
        shadow.len(),
        store.retired_count()
    );

    let retire_events = registry
        .journal()
        .snapshot()
        .iter()
        .filter(|e| matches!(e.event, Event::SegmentRetired { .. }))
        .count();
    println!("  telemetry journal recorded {retire_events} segment_retired event(s)");
    assert!(
        store.retired_count() >= 1,
        "expected at least one retirement"
    );
    println!("\ngraceful degradation tour complete");
}
