//! The serving layer end to end: boot a 4-shard `e2nvm-server` on an
//! ephemeral loopback port, talk to it with the blocking client —
//! single calls, a pipelined batch, a bounded scan, STATS and METRICS
//! frames — then shut it down gracefully over the wire.
//!
//! The frame layout on the sockets is documented in `PROTOCOL.md`.
//!
//! ```text
//! cargo run --release --example server
//! ```

use e2nvm::prelude::*;
use e2nvm::server::demo::demo_store;
use e2nvm::server::frame::{Request, Response};

fn main() {
    // A trained 4-shard store (demo geometry: 256 segments x 64 B).
    // The demo_store helper seeds two content families and trains one
    // placement model per shard; a production embedder would build its
    // own ShardedE2KvStore here.
    println!("training 4 shard models...");
    let mut store = demo_store(4, 256, 64, 7);

    // One registry sees the whole stack: the store's engine/device
    // series plus the server's wire-level series.
    let registry = TelemetryRegistry::new();
    store.attach_telemetry(&registry);

    // The validated builder is the construction path: invalid knobs
    // (zero timeout, empty cache, ...) fail here, not at start().
    let config = ServerConfig::builder()
        .max_connections(32)
        .build()
        .expect("valid server config");
    let handle = Server::new(store, config)
        .with_telemetry(&registry)
        .start()
        .expect("bind an ephemeral loopback port");
    let addr = handle.local_addr();
    println!("serving on {addr}");

    // Plain request/response calls.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    client.put(7, b"a value placed by the VAE").expect("put");
    assert_eq!(
        client.get(7).expect("get").as_deref(),
        Some(&b"a value placed by the VAE"[..])
    );
    assert_eq!(client.get(999).expect("get miss"), None);

    // Pipelining: many requests in one flush, responses in order.
    let batch: Vec<Request> = (0..32u64)
        .map(|key| Request::Put {
            key,
            value: key.to_le_bytes().to_vec(),
        })
        .collect();
    let responses = client.pipeline(&batch).expect("pipelined puts");
    assert!(responses.iter().all(|r| matches!(r, Response::Stored)));
    println!("pipelined {} PUTs in one round trip", responses.len());

    // The batch helpers wrap the same pipeline with typed results.
    let values = client.get_many(&[0, 1, 2, 999]).expect("batched gets");
    assert_eq!(values[0].as_deref(), Some(&0u64.to_le_bytes()[..]));
    assert_eq!(values[3], None);
    client
        .put_many(&[(100, b"alpha".to_vec()), (101, b"beta".to_vec())])
        .expect("batched puts");
    println!("get_many/put_many round-tripped");

    // Bounded scan: at most 5 entries of [0, 10].
    let entries = client.scan(0, 10, 5).expect("scan");
    println!(
        "scan [0,10] limit 5 -> keys {:?}",
        entries.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );

    // Observability over the wire: STATS (store + device JSON) and
    // METRICS (Prometheus exposition from the shared registry).
    println!("stats: {}", client.stats().expect("stats"));
    let metrics = client.metrics().expect("metrics");
    println!(
        "metrics exposition: {} lines{}",
        metrics.lines().count(),
        if cfg!(feature = "telemetry") {
            ""
        } else {
            " (build with --features telemetry for live series)"
        }
    );

    // Graceful shutdown over the wire: SHUTDOWN is acknowledged, the
    // accept loop drains, and join() reports connections served.
    client.shutdown_server().expect("shutdown ack");
    let served = handle.join();
    println!("clean shutdown after {served} connections");
}
