//! Quickstart: build a simulated NVM device, train E2-NVM on its
//! contents, and watch content-aware placement cut bit flips.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use e2nvm::core::{E2Config, E2Engine};
use e2nvm::sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. A 64 KiB simulated Optane-like pool: 256 segments of 256 B.
    let device = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(256)
            .num_segments(256)
            .build()
            .expect("valid device config"),
    );
    let mut controller = MemoryController::without_wear_leveling(device);

    // 2. Pretend the pool has lived a life: seed it with two content
    //    families (think "mostly-dark images" vs "mostly-bright ones").
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..controller.num_segments() {
        let base: u8 = if i % 2 == 0 { 0x11 } else { 0xEE };
        let content: Vec<u8> = (0..256)
            .map(|_| if rng.gen::<f32>() < 0.06 { !base } else { base })
            .collect();
        controller.seed(LogicalSegment(i), &content).expect("seed");
    }

    // 3. Train the placement model (VAE encoder + K-means on its latent
    //    space) on the free-segment contents.
    let cfg = E2Config::builder()
        .fast(256, 4)
        .pretrain_epochs(12)
        .joint_epochs(3)
        .build()
        .expect("config");
    let mut engine = E2Engine::new(controller, cfg).expect("engine");
    println!("training the placement model...");
    engine.train().expect("train");
    println!(
        "trained: k = {}, ~{} MACs per prediction\n",
        engine.model().expect("trained").k(),
        engine.predict_macs()
    );

    // 4. Use it as a key-value store. Values similar to the "dark"
    //    family land on dark segments, flipping few bits.
    let dark_value: Vec<u8> = (0..200).map(|_| 0x11u8).collect();
    let bright_value: Vec<u8> = (0..200).map(|_| 0xEEu8).collect();

    engine.reset_device_stats();
    engine.put(1, &dark_value).expect("put");
    engine.put(2, &bright_value).expect("put");
    let smart = engine.device_stats().bits_flipped;
    println!("E2-NVM placement: {smart} bits flipped for two 200 B writes");

    // Compare with what an arbitrary (worst-case: cross-family)
    // placement would have cost.
    let naive = (dark_value.len() * 8) as u64; // ~every bit differs
    println!("arbitrary placement would flip ≈{naive} bits per write\n");

    // 5. Reads and deletes work as usual; deletes recycle the address
    //    back into the model's cluster pools.
    assert_eq!(engine.get(1).expect("get"), dark_value);
    engine.delete(1).expect("delete");
    println!(
        "store: {} keys, {} free segments, {:.0} pJ total write energy",
        engine.len(),
        engine.free_count(),
        engine.device_stats().energy_pj
    );
}
