//! Explore the paper's §4 padding strategies interactively-ish: pad the
//! worked example `d1 = [0,0,0,1]` (Figure 5) with every type × location
//! combination and show the resulting model inputs, then measure which
//! strategy places variable-size values best on a trained engine.
//!
//! ```text
//! cargo run --release --example padding_explorer
//! ```

use e2nvm::core::{E2Config, E2Engine, Padder, PaddingLocation, PaddingType};
use e2nvm::sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use e2nvm::workloads::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bits_to_string(bits: &[f32]) -> String {
    bits.iter()
        .map(|&b| if b > 0.5 { '1' } else { '0' })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    // --- Part 1: the paper's Figure 5 worked example -----------------
    // d1 = [0,0,0,1], padded from 4 to 8 bits.
    let d1 = [0b0001_0000u8]; // the 4 data bits live in the top nibble
    println!("padding d1 = [0,0,0,1] from 4 to 8 bits (paper Figure 5):\n");
    println!("{:>10} {:>10} {:>10}", "type", "location", "model input");
    for ptype in PaddingType::ALL {
        for loc in PaddingLocation::ALL {
            let mut padder = Padder::new(loc, ptype);
            padder.observe(&[0b1010_1100]); // some dataset history for DB
            padder.set_memory_ratio(0.6);
            // Only the top 4 bits of d1 are data; emulate by padding the
            // 4-bit value. (Bytes are the API granularity; we show the
            // 8->16 bit equivalent of the paper's 4->8 example.)
            let padded = padder.pad(&d1, 16, &mut rng);
            println!(
                "{:>10} {:>10} {:>16}",
                ptype.name(),
                loc.name(),
                bits_to_string(&padded)
            );
        }
    }

    // --- Part 2: which strategy places sub-segment values best? ------
    const SEGMENT: usize = 64;
    const SEGMENTS: usize = 160;
    let old = DatasetKind::MnistLike.generate_sized(SEGMENTS, SEGMENT, &mut rng);
    let values: Vec<Vec<u8>> = DatasetKind::MnistLike
        .generate_sized(96, SEGMENT, &mut rng)
        .into_iter()
        .map(|v| v[..SEGMENT * 2 / 3].to_vec()) // crop one third off
        .collect();

    let device = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(SEGMENT)
            .num_segments(SEGMENTS)
            .build()
            .expect("device config"),
    );
    let mut controller = MemoryController::without_wear_leveling(device);
    for (i, content) in old.iter().enumerate() {
        controller.seed(LogicalSegment(i), content).expect("seed");
    }
    let mut engine = E2Engine::new(
        controller,
        E2Config::builder()
            .fast(SEGMENT, 8)
            .pretrain_epochs(12)
            .joint_epochs(3)
            .build()
            .expect("config"),
    )
    .expect("engine");
    println!("\ntraining placement model on {SEGMENTS} resident segments...");
    engine.train().expect("train");

    println!("\nflips per word when placing 2/3-size values (end padding):");
    for ptype in PaddingType::ALL {
        engine.set_padding(PaddingLocation::End, ptype);
        engine.reset_device_stats();
        let mut placed = Vec::new();
        for v in &values {
            if let Ok((seg, _)) = engine.place_value(v) {
                placed.push(seg);
            }
        }
        for seg in placed {
            engine.recycle_segment(seg).expect("recycle");
        }
        let stats = engine.device_stats();
        let words = (stats.bits_requested / 32).max(1);
        println!(
            "  {:>6}: {:.2}",
            ptype.name(),
            stats.bits_flipped as f64 / words as f64
        );
    }
    println!("\nlower is better — learned (LB) padding should be near the top of the ranking");
}
