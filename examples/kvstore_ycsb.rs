//! Run the YCSB core workloads against the E2-NVM key-value store
//! (red-black-tree index + VAE/K-means placement) and print per-workload
//! device statistics — a miniature of the paper's Figure 11 setup.
//!
//! ```text
//! cargo run --release --example kvstore_ycsb
//! ```

use e2nvm::core::{E2Config, E2Engine};
use e2nvm::kvstore::{E2KvStore, NvmKvStore};
use e2nvm::sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use e2nvm::workloads::{Operation, Ycsb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEGMENT: usize = 128;
const SEGMENTS: usize = 256;
const RECORDS: u64 = 96;
const OPS: usize = 600;

/// Clusterable values: ten content classes, keyed deterministically.
fn value_for(key: u64, version: u32) -> Vec<u8> {
    let class = (key % 10) as u8;
    let mut state = key ^ u64::from(version) << 32;
    (0..SEGMENT)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 33) % 19 == 0) as u8 * (state >> 40) as u8;
            (class * 25).wrapping_add((i as u8) / 16) ^ noise
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);
    println!("loading {RECORDS} records into an E2-NVM KV store...");
    let device = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(SEGMENT)
            .num_segments(SEGMENTS)
            .build()
            .expect("device config"),
    );
    let mut controller = MemoryController::without_wear_leveling(device);
    // Seed the pool with class-structured residue.
    for i in 0..SEGMENTS {
        let content = value_for(i as u64, rng.gen());
        controller.seed(LogicalSegment(i), &content).expect("seed");
    }
    let cfg = E2Config::builder()
        .fast(SEGMENT, 10)
        .pretrain_epochs(15)
        .joint_epochs(3)
        .build()
        .expect("config");
    let mut engine = E2Engine::new(controller, cfg).expect("engine");
    engine.train().expect("train");
    let mut store = E2KvStore::new(engine);
    for key in 0..RECORDS {
        store.put(key, &value_for(key, 0)).expect("load");
    }

    println!(
        "{:>9} {:>8} {:>12} {:>14} {:>12}",
        "workload", "writes", "flips/write", "energy/write", "reads"
    );
    for mut w in Ycsb::all(RECORDS, SEGMENT, 99) {
        store.reset_stats();
        let mut version = 1u32;
        for op in w.take_ops(OPS) {
            match op {
                Operation::Read(k) => {
                    let _ = store.get(k % RECORDS);
                }
                Operation::Update(k, _) | Operation::ReadModifyWrite(k, _) => {
                    version += 1;
                    let k = k % RECORDS;
                    store.put(k, &value_for(k, version)).expect("update");
                }
                Operation::Insert(k, _) => {
                    version += 1;
                    let k = k % (RECORDS * 2);
                    store.put(k, &value_for(k, version)).expect("insert");
                }
                Operation::Scan(k, len) => {
                    let lo = k % RECORDS;
                    let _ = store.scan(lo, lo.saturating_add(len as u64));
                }
            }
        }
        let s = store.stats();
        println!(
            "{:>9} {:>8} {:>12.1} {:>11.0} pJ {:>12}",
            w.name(),
            s.writes,
            s.flips_per_write(),
            s.energy_per_write_pj(),
            s.reads,
        );
    }
    println!("\ndone — write-heavy workloads (A, F) show the placement savings most clearly");
}
