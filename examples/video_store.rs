//! Store two CCTV camera feeds on one simulated NVM pool, comparing
//! E2-NVM's content-aware frame placement against arbitrary placement.
//! This mirrors the paper's video evaluation (§5.2.1: two camera
//! sequences, CCTV1 and CCTV2; older footage is overwritten by newer
//! footage): each incoming frame should overwrite a frame *from the
//! same camera*, where almost every background pixel already matches.
//!
//! ```text
//! cargo run --release --example video_store
//! ```

use e2nvm::core::{E2Config, E2Engine};
use e2nvm::sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use e2nvm::workloads::VideoDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

const W: usize = 32;
const H: usize = 24;
const FRAME: usize = W * H;
const SEGMENTS: usize = 180;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    // Two cameras watching different intersections: different static
    // backgrounds, different traffic.
    let cctv1 = VideoDataset::new(W, H, 4, &mut rng);
    let cctv2 = VideoDataset::new(W, H, 2, &mut rng);
    println!("two cameras, {W}x{H} grayscale, {FRAME} B/frame");

    // "Old data": 30 seconds from each camera fills the pool,
    // interleaved (as a naive recorder would have laid them out).
    let old_frames: Vec<Vec<u8>> = (0..SEGMENTS / 2)
        .flat_map(|t| [cctv1.frame(t), cctv2.frame(t)])
        .collect();
    // "New data": the rest of both clips, also interleaved.
    let new_frames: Vec<Vec<u8>> = (0..120)
        .flat_map(|t| [cctv1.frame(SEGMENTS + t), cctv2.frame(SEGMENTS + t)])
        .collect();

    let seeded_controller = || {
        let device = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(FRAME)
                .num_segments(SEGMENTS)
                .build()
                .expect("device config"),
        );
        let mut controller = MemoryController::without_wear_leveling(device);
        for (i, frame) in old_frames.iter().enumerate() {
            controller.seed(LogicalSegment(i), frame).expect("seed");
        }
        controller
    };

    // --- E2-NVM: route each frame to a same-camera segment ----------
    let cfg = E2Config::builder()
        .fast(FRAME, 4)
        .latent_dim(8)
        .hidden(vec![64])
        .pretrain_epochs(15)
        .joint_epochs(3)
        .lr(3e-3)
        .beta(0.1)
        .build()
        .expect("config");
    let mut engine = E2Engine::new(seeded_controller(), cfg).expect("engine");
    println!("training on resident frames...");
    engine.train().expect("train");
    let mut placed = std::collections::VecDeque::new();
    for frame in &new_frames {
        if placed.len() >= SEGMENTS / 2 {
            let victim = placed.pop_front().expect("nonempty");
            engine.recycle_segment(victim).expect("recycle");
        }
        let (seg, _) = engine.place_value(frame).expect("place");
        placed.push_back(seg);
    }
    let smart = engine.device_stats().clone();

    // --- Baseline: round-robin placement (cameras get mixed up) ------
    let mut controller = seeded_controller();
    // Stride through the pool so camera-1 frames regularly land on
    // camera-2 residue, as arbitrary allocation would.
    for (i, frame) in new_frames.iter().enumerate() {
        controller
            .write_at(LogicalSegment((i * 7 + 3) % SEGMENTS), 0, frame)
            .expect("write");
    }
    let naive = controller.stats().clone();

    println!("\n              {:>12} {:>12}", "E2-NVM", "arbitrary");
    println!(
        "flips/frame   {:>12.0} {:>12.0}",
        smart.flips_per_write(),
        naive.flips_per_write()
    );
    println!(
        "energy/frame  {:>9.0} pJ {:>9.0} pJ",
        smart.energy_per_write_pj(),
        naive.energy_per_write_pj()
    );
    let saving = 1.0 - smart.flips_per_write() / naive.flips_per_write();
    println!(
        "\nbit-flip saving from camera-aware placement: {:.0}%",
        saving * 100.0
    );
}
