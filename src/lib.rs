//! # e2nvm — umbrella crate for the E2-NVM reproduction
//!
//! Re-exports the public API of every workspace crate so that examples,
//! integration tests, and downstream users can depend on a single crate.
//!
//! * [`sim`] — the PCM/Optane device model, memory controller, wear
//!   leveling, energy/latency accounting.
//! * [`ml`] — from-scratch ML substrate: VAE, joint VAE+K-means, K-means,
//!   PCA, LSTM.
//! * [`baselines`] — DCW, Flip-N-Write, MinShift, Captopril, DATACON,
//!   Hamming-Tree, PNW.
//! * [`core`] — the paper's contribution: the E2-NVM placement engine.
//! * [`kvstore`] — the persistent KV store and NVM index structures.
//! * [`persist`] — crash-consistent persistence: per-shard write-ahead
//!   logs, atomic full-system snapshots, and the unified save/load
//!   facade behind `PersistenceConfig` (DESIGN.md §14).
//! * [`workloads`] — YCSB and synthetic dataset generators.
//! * [`telemetry`] — lock-free metrics registry + event journal
//!   (compiled away without the `telemetry` feature).
//! * [`server`] — the TCP serving layer: length-prefixed binary wire
//!   protocol (PROTOCOL.md), threaded pipelined server, blocking
//!   client.
//! * [`cluster`] — N servers as one keyspace: consistent-hash routing,
//!   R-way replication with read repair, and wear-driven failover
//!   (DESIGN.md §15, OPERATIONS.md).
//!
//! The [`prelude`] pulls in the types almost every integration needs:
//!
//! ```
//! use e2nvm::prelude::*;
//! use e2nvm::sim::{DeviceConfig, MemoryController, NvmDevice};
//!
//! let device = NvmDevice::new(
//!     DeviceConfig::builder().segment_bytes(64).num_segments(64).build().unwrap(),
//! );
//! let cfg = E2Config::builder()
//!     .fast(64, 2)
//!     .pretrain_epochs(2)
//!     .joint_epochs(1)
//!     .padding_type(PaddingType::Zero)
//!     .build()
//!     .unwrap();
//! let mut engine = E2Engine::new(
//!     MemoryController::without_wear_leveling(device),
//!     cfg,
//! ).unwrap();
//! let registry = TelemetryRegistry::new();
//! engine.attach_telemetry(&registry, 0);
//! engine.train().unwrap();
//! engine.put(42, b"value").unwrap();
//! assert_eq!(engine.get(42).unwrap(), b"value");
//! # #[cfg(feature = "telemetry")]
//! assert!(registry.render_prometheus().contains("e2nvm_device_writes_total"));
//! ```

pub use e2nvm_baselines as baselines;
pub use e2nvm_cluster as cluster;
pub use e2nvm_core as core;
pub use e2nvm_kvstore as kvstore;
pub use e2nvm_ml as ml;
pub use e2nvm_persist as persist;
pub use e2nvm_server as server;
pub use e2nvm_sim as sim;
pub use e2nvm_telemetry as telemetry;
pub use e2nvm_workloads as workloads;

/// The types almost every user of the reproduction touches: engine +
/// config construction, the KV trait and stores, and the telemetry
/// surface (no-op types when the `telemetry` feature is off).
pub mod prelude {
    pub use e2nvm_cluster::{ClusterClient, ClusterConfig, ClusterView, NodeState};
    pub use e2nvm_core::{
        E2Config, E2ConfigBuilder, E2Engine, E2Error, PaddingLocation, PaddingType, ShardedEngine,
        SharedEngine,
    };
    pub use e2nvm_kvstore::{
        CacheConfig, CacheConfigBuilder, CacheStats, CachedKvStore, E2KvStore, HotCache,
        NvmKvStore, ShardedE2KvStore, StoreError,
    };
    pub use e2nvm_persist::{FlushPolicy, PersistenceConfig, PersistenceConfigBuilder};
    pub use e2nvm_server::{Client, Server, ServerConfig, ServerConfigBuilder, ServerHandle};
    pub use e2nvm_sim::{
        DeviceConfig, DeviceStats, FaultConfig, LogicalSegment, MemoryController, NvmDevice,
        PhysicalSegment, SegmentRemap,
    };
    pub use e2nvm_telemetry::{Event, EventJournal, TelemetryRegistry};
}

/// Compile-checks every Rust code block in the README as a doctest, so
/// the documented examples can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
