//! # e2nvm — umbrella crate for the E2-NVM reproduction
//!
//! Re-exports the public API of every workspace crate so that examples,
//! integration tests, and downstream users can depend on a single crate.
//!
//! * [`sim`] — the PCM/Optane device model, memory controller, wear
//!   leveling, energy/latency accounting.
//! * [`ml`] — from-scratch ML substrate: VAE, joint VAE+K-means, K-means,
//!   PCA, LSTM.
//! * [`baselines`] — DCW, Flip-N-Write, MinShift, Captopril, DATACON,
//!   Hamming-Tree, PNW.
//! * [`core`] — the paper's contribution: the E2-NVM placement engine.
//! * [`kvstore`] — the persistent KV store and NVM index structures.
//! * [`workloads`] — YCSB and synthetic dataset generators.

//! ```
//! use e2nvm::core::{E2Config, E2Engine};
//! use e2nvm::sim::{DeviceConfig, MemoryController, NvmDevice};
//!
//! let device = NvmDevice::new(
//!     DeviceConfig::builder().segment_bytes(64).num_segments(64).build().unwrap(),
//! );
//! let mut engine = E2Engine::new(
//!     MemoryController::without_wear_leveling(device),
//!     E2Config {
//!         pretrain_epochs: 2,
//!         joint_epochs: 1,
//!         padding_type: e2nvm::core::PaddingType::Zero,
//!         ..E2Config::fast(64, 2)
//!     },
//! ).unwrap();
//! engine.train().unwrap();
//! engine.put(42, b"value").unwrap();
//! assert_eq!(engine.get(42).unwrap(), b"value");
//! ```

pub use e2nvm_baselines as baselines;
pub use e2nvm_core as core;
pub use e2nvm_kvstore as kvstore;
pub use e2nvm_ml as ml;
pub use e2nvm_sim as sim;
pub use e2nvm_workloads as workloads;
